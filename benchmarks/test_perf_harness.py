"""Harness wall-clock benchmark: serial vs parallel vs warm-cache sweeps.

Unlike the figure benches (which care about the *simulated* results), this
one measures the harness itself: how long the same multi-configuration
sweep takes executed serially in-process, fanned out over a process pool
(``jobs >= 4``), and served from a warm content-addressed result cache.
All three must be bit-identical -- every run is deterministic -- so the
only thing that may differ is the wall-clock.

The numbers land in ``BENCH_harness.json`` at the repo root, seeding the
perf trajectory for future PRs.  On a single-core box the pool cannot beat
serial (the sweep is pure CPU work); the cache still must -- the acceptance
bar is >= 2x for the best jobs>=4 path, which the warm cache clears by
orders of magnitude.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.exec import ParallelExecutor, ResultCache, SerialExecutor
from repro.harness import ExperimentConfig, run_sweep
from repro.harness.persist import run_result_to_dict
from repro.harness.report import format_table

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_harness.json"

#: the sweep under test: 3 configurations x 2 schemes = 6 independent runs
BASE = ExperimentConfig(app_name="shockpool3d", network="wan", steps=3)
CONFIGS = (1, 2, 4)
JOBS = 4


def _comparable(sweep):
    out = []
    for p in sweep.pairs:
        for r in (p.parallel, p.distributed):
            d = run_result_to_dict(r)
            d.pop("event_counts", None)
            out.append(d)
    return out


def _timed(executor):
    t0 = time.perf_counter()
    sweep = run_sweep(BASE, procs_per_group=CONFIGS, executor=executor)
    return sweep, time.perf_counter() - t0


def _scenario(tmp_dir: Path):
    serial_sweep, serial_s = _timed(SerialExecutor())
    parallel_sweep, parallel_s = _timed(ParallelExecutor(jobs=JOBS))

    cache = ResultCache(tmp_dir)
    _timed(SerialExecutor(cache=cache))  # populate
    warm_ex = ParallelExecutor(jobs=JOBS, cache=cache)
    warm_sweep, warm_s = _timed(warm_ex)

    reference = _comparable(serial_sweep)
    identical = (
        reference == _comparable(parallel_sweep)
        and reference == _comparable(warm_sweep)
        and warm_ex.last_stats.cache_hits == 2 * len(CONFIGS)
    )
    return {
        "benchmark": "harness-executor",
        "sweep": {
            "app": BASE.app_name,
            "network": BASE.network,
            "steps": BASE.steps,
            "configs": list(CONFIGS),
            "runs": 2 * len(CONFIGS),
        },
        "cpu_count": os.cpu_count(),
        "jobs": JOBS,
        "serial_seconds": serial_s,
        "parallel_cold_seconds": parallel_s,
        "warm_cache_seconds": warm_s,
        "speedup_parallel_cold": serial_s / parallel_s,
        "speedup_warm_cache": serial_s / warm_s,
        # the headline number: best jobs>=4 execution path vs cold serial
        "speedup": serial_s / min(parallel_s, warm_s),
        "identical_results": identical,
    }


def test_harness_executor_speedup(once, benchmark, tmp_path):
    record = once(benchmark, _scenario, tmp_path)

    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    rows = [
        ("serial (jobs=1)", record["serial_seconds"], 1.0),
        ("process pool (cold)", record["parallel_cold_seconds"],
         record["speedup_parallel_cold"]),
        ("warm cache", record["warm_cache_seconds"],
         record["speedup_warm_cache"]),
    ]
    print()
    print(format_table(
        ["execution path", "wall-clock [s]", "speedup vs serial"], rows,
        title=f"{record['sweep']['runs']}-run sweep, jobs={record['jobs']}, "
              f"{record['cpu_count']} CPU(s) -> {BENCH_PATH.name}",
    ))

    assert record["identical_results"], "executor paths disagree on results"
    assert record["speedup"] >= 2.0, (
        f"expected >= 2x on the best jobs>={record['jobs']} path, got "
        f"{record['speedup']:.2f}x"
    )
