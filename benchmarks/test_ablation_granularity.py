"""Ablation -- balancing granularity: how many level-0 grids per processor.

The schemes move whole grids (splitting only at the global boundary), so
the root tiling sets the balancing resolution.  Too few blocks per
processor and neither phase can equalize load; too many and per-grid
overheads (ghost perimeter, bookkeeping) grow.  The paper does not study
this knob; production SAMR codes tune it carefully.
"""

from __future__ import annotations

from conftest import run_once

from repro.amr.applications import ShockPool3D
from repro.core import DistributedDLB
from repro.distsys import ConstantTraffic, wan_system
from repro.harness.report import format_table
from repro.runtime import SAMRRunner

#: blocks along x for the 16^3 domain with 2+2 processors
BLOCK_COUNTS = ((2, 1, 1), (4, 1, 1), (8, 1, 1), (8, 2, 1), (8, 2, 2))


def sweep():
    rows = []
    for blocks in BLOCK_COUNTS:
        app = ShockPool3D(domain_cells=16, max_levels=3)
        system = wan_system(2, ConstantTraffic(0.45), base_speed=2e4)
        runner = SAMRRunner(app, system, DistributedDLB(),
                            blocks_per_axis=blocks)
        r = runner.run(6)
        n = blocks[0] * blocks[1] * blocks[2]
        rows.append((n, r.total_time, r.compute_time, r.redistributions))
    return rows


def test_ablation_granularity(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["level-0 grids", "total [s]", "compute [s]", "redistributions"],
            rows,
            title="Ablation: root-grid granularity (ShockPool3D, WAN, 2+2)",
        )
    )
    by_n = {n: t for n, t, _c, _r in rows}
    # 2 blocks over 4 processors cannot balance: it must be the worst
    worst_allowed = max(t for n, t in by_n.items() if n >= 8)
    assert by_n[2] > worst_allowed
    # the default regime (>= 4 blocks/processor) is stable within 20%
    fine = [t for n, t in by_n.items() if n >= 16]
    assert max(fine) / min(fine) < 1.2
