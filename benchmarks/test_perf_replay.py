"""Trace replay benchmark: re-balancing a recorded workload vs the full run.

The point of :mod:`repro.traces` is that exploring schemes / gamma / fault
schedules over a fixed workload should not pay for the AMR solver and the
clustering pipeline again and again.  This bench records one mid-size run,
then measures three things honestly on the same machine:

* the wall-clock of the full solver run,
* the wall-clock of replaying its trace under the identical scheme+system
  (which must also be *bit-for-bit identical* in result -- the golden
  equivalence contract of docs/TRACES.md),
* the trace file's compressed size.

The numbers land in ``BENCH_replay.json`` at the repo root.  Acceptance:
replay is >= 10x faster than the full run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.harness import ExperimentConfig, run_experiment
from repro.harness.persist import run_result_to_dict
from repro.harness.report import format_table
from repro.traces import record_run, replay_trace, write_trace

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_replay.json"

#: mid-size run: large enough that the solver + clustering dominate, small
#: enough for CI (the full run is a few seconds)
CONFIG = ExperimentConfig(app_name="shockpool3d", network="wan",
                          procs_per_group=4, steps=3, domain_cells=32,
                          max_levels=3)
SCHEME = "distributed"


def _scenario(tmp_dir: Path):
    t0 = time.perf_counter()
    full = run_experiment(CONFIG, SCHEME)
    full_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    recorded, trace = record_run(CONFIG, SCHEME)
    record_s = time.perf_counter() - t0

    trace_path = tmp_dir / "bench.trace.jsonl.gz"
    trace_bytes = write_trace(trace, trace_path)

    t0 = time.perf_counter()
    replayed = replay_trace(trace, CONFIG, SCHEME, strict=True)
    replay_s = time.perf_counter() - t0

    # replaying under a different gamma, the actual use case, costs the same
    t0 = time.perf_counter()
    replay_trace(trace, CONFIG, SCHEME, seed=CONFIG.traffic_seed)
    replay2_s = time.perf_counter() - t0

    identical = (
        run_result_to_dict(full) == run_result_to_dict(recorded)
        == run_result_to_dict(replayed)
    )
    return {
        "benchmark": "trace-replay",
        "config": {
            "app": CONFIG.app_name,
            "network": CONFIG.network,
            "procs_per_group": CONFIG.procs_per_group,
            "steps": CONFIG.steps,
            "domain_cells": CONFIG.domain_cells,
            "max_levels": CONFIG.max_levels,
            "scheme": SCHEME,
        },
        "cpu_count": os.cpu_count(),
        "full_run_seconds": full_s,
        "record_overhead_seconds": record_s - full_s,
        "replay_seconds": replay_s,
        "replay_repeat_seconds": replay2_s,
        "trace_records": len(trace.records),
        "trace_file_bytes": trace_bytes,
        "speedup": full_s / replay_s,
        "identical_results": identical,
    }


def test_replay_speedup(once, benchmark, tmp_path):
    record = once(benchmark, _scenario, tmp_path)

    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    rows = [
        ("full solver run", record["full_run_seconds"], 1.0),
        ("record (overhead over full)",
         record["full_run_seconds"] + record["record_overhead_seconds"],
         record["full_run_seconds"]
         / (record["full_run_seconds"] + record["record_overhead_seconds"])),
        ("trace replay", record["replay_seconds"], record["speedup"]),
    ]
    print()
    print(format_table(
        ["execution path", "wall-clock [s]", "speedup vs full"], rows,
        title=f"{record['config']['app']} {record['config']['domain_cells']}^3"
              f" x{record['config']['steps']} steps, trace "
              f"{record['trace_file_bytes']} bytes -> {BENCH_PATH.name}",
    ))

    assert record["identical_results"], (
        "replay is not bit-for-bit identical to the recorded run"
    )
    assert record["speedup"] >= 10.0, (
        f"expected replay >= 10x faster than the full run, got "
        f"{record['speedup']:.2f}x"
    )
