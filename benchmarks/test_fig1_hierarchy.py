"""Fig. 1 -- SAMR grid hierarchy: rebuild the depicted 4-level tree.

Regenerates the paper's illustration from the real flag -> cluster ->
regrid pipeline and prints per-level grid/cell counts.
"""

from __future__ import annotations

from conftest import run_once

from repro.harness.figures import fig1_hierarchy


def test_fig1_hierarchy(benchmark):
    result = run_once(benchmark, fig1_hierarchy, domain_cells=32, max_levels=4)
    print()
    print(result.render())
    # Fig. 1 shows a populated 4-level tree with more grids at finer levels
    assert len(result.levels) == 4
    ngrids = [g for _, g, _ in result.levels]
    assert all(n > 0 for n in ngrids)
    assert ngrids[-1] > ngrids[1]
    result.hierarchy.validate()
