"""Serving-simulator benchmark: throughput floor + bit-for-bit determinism.

Two gates guard :mod:`repro.service` (see docs/SERVICE.md):

* **throughput** -- the event loop must simulate at least
  ``REPRO_SERVICE_MIN_REQS`` requests per wall-clock second (default
  50,000): serving "millions of simulated users" has to stay an
  interactive-scale experiment, not an overnight one;
* **determinism** -- the same config must produce the bit-identical
  service report (the sha256 of its canonical JSON) across repeated
  in-process runs *and* through the serving daemon's worker pool.  Any
  hidden RNG state, dict-ordering dependence or cross-process divergence
  breaks the hash equality here before it can corrupt a sweep.

Numbers land in ``BENCH_service.json`` at the repo root.  Environment
overrides for CI smoke runs:

* ``REPRO_SERVICE_DURATION`` -- simulated seconds (default 300)
* ``REPRO_SERVICE_MIN_REQS`` -- requests/sec wall-clock floor (default 50000)
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import os
import threading
import time
from pathlib import Path

from repro.config import ServiceConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.report import format_table
from repro.serve import ServeClient, ServeError, ServeServer
from repro.service import report_hash

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

DURATION = float(os.environ.get("REPRO_SERVICE_DURATION", "300"))
MIN_REQS_PER_SEC = float(os.environ.get("REPRO_SERVICE_MIN_REQS", "50000"))

#: the paper-default serving scenario: 32 shards x 2 replicas on 4+4 procs,
#: 2000 req/s saturation under flash-crowd arrivals, balancing every 10 s
SERVICE = ServiceConfig(duration_seconds=DURATION)
CONFIG = ExperimentConfig(procs_per_group=4, service=SERVICE)
SCHEME = "distributed"


@contextlib.contextmanager
def _running_server(tmp_path: Path):
    sock = str(tmp_path / "serve.sock")
    started: concurrent.futures.Future = concurrent.futures.Future()

    def body():
        async def amain():
            server = ServeServer(socket_path=sock, workers=2, queue_size=4,
                                 cache_dir=str(tmp_path / "serve_cache"))
            await server.start()
            started.set_result(server)
            await server.serve_until_shutdown()

        try:
            asyncio.run(amain())
        except BaseException as err:  # pragma: no cover - surfacing only
            if not started.done():
                started.set_exception(err)
            raise

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    started.result(timeout=30)
    try:
        yield ServeClient(socket_path=sock, timeout=600)
    finally:
        with contextlib.suppress(OSError, ServeError):
            ServeClient(socket_path=sock, timeout=30).shutdown(force=True)
        thread.join(timeout=120)


def _scenario(tmp_path: Path):
    t0 = time.perf_counter()
    first = run_experiment(CONFIG, SCHEME)
    first_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    second = run_experiment(CONFIG, SCHEME)
    second_s = time.perf_counter() - t0

    with _running_server(tmp_path) as client:
        t0 = time.perf_counter()
        job = client.submit(CONFIG, scheme=SCHEME)
        daemon_s = time.perf_counter() - t0
    daemon_report = job.raw_run["service"]

    svc = first.service
    hashes = {
        "in_process": report_hash(svc),
        "repeat": report_hash(second.service),
        "daemon": report_hash(daemon_report),
    }
    wall = min(first_s, second_s)
    return {
        "benchmark": "service-loop",
        "config": {
            "nshards": SERVICE.nshards,
            "replication": SERVICE.replication,
            "requests_per_second": SERVICE.requests_per_second,
            "duration_seconds": SERVICE.duration_seconds,
            "arrivals": SERVICE.arrivals,
            "router": SERVICE.router,
            "scheme": SCHEME,
            "procs_per_group": CONFIG.procs_per_group,
        },
        "cpu_count": os.cpu_count(),
        "simulated_requests": svc["total_requests"],
        "simulated_seconds": svc["duration"],
        "wall_seconds_first": first_s,
        "wall_seconds_repeat": second_s,
        "wall_seconds_daemon_round_trip": daemon_s,
        "requests_per_wall_second": svc["total_requests"] / wall,
        "p50_ms": svc["p50"] * 1e3,
        "p99_ms": svc["p99"] * 1e3,
        "slo_violations": svc["slo_violations"],
        "migrations": svc["migrations"],
        "migration_bytes": svc["migration_bytes"],
        "report_hashes": hashes,
        "deterministic": len(set(hashes.values())) == 1,
    }


def test_service_throughput_and_determinism(once, benchmark, tmp_path):
    record = once(benchmark, _scenario, tmp_path)

    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    rows = [
        ("in-process run", record["wall_seconds_first"],
         record["simulated_requests"] / record["wall_seconds_first"]),
        ("repeat run", record["wall_seconds_repeat"],
         record["simulated_requests"] / record["wall_seconds_repeat"]),
        ("daemon round trip", record["wall_seconds_daemon_round_trip"],
         record["simulated_requests"]
         / record["wall_seconds_daemon_round_trip"]),
    ]
    print()
    print(format_table(
        ["execution path", "wall-clock [s]", "simulated req/s"], rows,
        title=f"{record['simulated_requests']} requests over "
              f"{record['simulated_seconds']:.0f} simulated seconds, "
              f"p99 {record['p99_ms']:.1f}ms -> {BENCH_PATH.name}",
    ))

    assert record["deterministic"], (
        f"service report hashes diverged: {record['report_hashes']}"
    )
    assert record["requests_per_wall_second"] >= MIN_REQS_PER_SEC, (
        f"expected >= {MIN_REQS_PER_SEC:.0f} simulated requests per "
        f"wall-clock second, got {record['requests_per_wall_second']:.0f}"
    )
