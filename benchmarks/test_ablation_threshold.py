"""Ablation -- the imbalance-detection threshold ("if imbalance exists").

Section 4.2: "First, the scheme checks the load distribution of the
system.  If imbalance exists, the scheme calculates the amount of load
needed to migrate" -- but the paper never says how much imbalance counts.
This knob (`SchemeParams.imbalance_threshold`, max/min of
capacity-normalised group loads) decides how often the gain/cost machinery
-- probe included -- runs at all.
"""

from __future__ import annotations

from conftest import run_once

from repro.config import SchemeParams
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.report import format_table

THRESHOLDS = (1.0, 1.02, 1.05, 1.2, 1.5, 100.0)


def sweep():
    rows = []
    for th in THRESHOLDS:
        cfg = ExperimentConfig(
            app_name="shockpool3d", network="wan", procs_per_group=4,
            steps=6, traffic_level=0.45,
            scheme_params=SchemeParams(imbalance_threshold=th),
        )
        r = run_experiment(cfg, "distributed")
        rows.append((th, r.total_time, r.redistributions, r.probe_time))
    return rows


def test_ablation_threshold(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["threshold", "total [s]", "redistributions", "probe time [s]"],
            rows,
            title="Ablation: imbalance-detection threshold (ShockPool3D, WAN, 4+4)",
        )
    )
    by_th = {th: (t, n, p) for th, t, n, p in rows}
    # an effectively impossible threshold disables the global machinery
    assert by_th[100.0][1] == 0
    assert by_th[100.0][2] == 0.0  # and with it, all probing
    # a hair trigger probes at least as often as the default
    assert by_th[1.0][2] >= by_th[1.05][2]
    # redistribution count decreases as the threshold loosens
    counts = [n for _th, _t, n, _p in rows]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    # disabling the global phase costs real time on this moving workload
    assert by_th[100.0][0] > min(t for _th, t, _n, _p in rows)
