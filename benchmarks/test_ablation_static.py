"""Ablation -- the value of dynamic balancing at all.

The paper compares two *dynamic* schemes.  This ablation adds the implied
lower bound: a static distribution that is never corrected.  As the shock
sweeps the domain, refinement piles onto the processors that own its path
and the bulk-synchronous steps serialize on them.
"""

from __future__ import annotations

from conftest import run_once

from repro.amr.applications import ShockPool3D
from repro.core import DistributedDLB, ParallelDLB, StaticDLB
from repro.distsys import ConstantTraffic, wan_system
from repro.harness.report import format_table
from repro.runtime import SAMRRunner


def run_all():
    out = {}
    for name, scheme in (
        ("static (no DLB)", StaticDLB()),
        ("parallel DLB", ParallelDLB()),
        ("distributed DLB", DistributedDLB()),
    ):
        app = ShockPool3D(domain_cells=16, max_levels=3)
        system = wan_system(2, ConstantTraffic(0.45), base_speed=2e4)
        out[name] = SAMRRunner(app, system, scheme).run(6)
    return out


def test_ablation_static(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print(
        format_table(
            ["scheme", "total [s]", "compute [s]", "comm [s]"],
            [
                (name, r.total_time, r.compute_time, r.comm_time)
                for name, r in results.items()
            ],
            title="Ablation: value of DLB (ShockPool3D, WAN, 2+2, 6 steps)",
        )
    )
    static = results["static (no DLB)"]
    par = results["parallel DLB"]
    dist = results["distributed DLB"]
    # any dynamic balancing beats none on a moving workload ...
    assert dist.total_time < static.total_time
    # ... and the network-aware scheme beats the network-oblivious one
    assert dist.total_time < par.total_time
    # static compute is the worst: imbalance accumulates unchecked
    assert static.compute_time > dist.compute_time
