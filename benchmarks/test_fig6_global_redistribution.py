"""Fig. 6 -- the global-redistribution example: a boundary shift from the
overloaded group to the underloaded one, moving only level-0 grids.
"""

from __future__ import annotations

from conftest import run_once

from repro.harness import ExperimentConfig
from repro.harness.figures import fig6_global_redistribution


def test_fig6_global_redistribution(benchmark):
    cfg = ExperimentConfig(app_name="shockpool3d", network="wan",
                           procs_per_group=2, steps=6)
    result = run_once(benchmark, fig6_global_redistribution, cfg)
    print()
    print(result.render())
    assert result.moved_grids > 0
    assert result.moved_cells > 0
    # the shift moves the groups toward balance (the shaded slice of Fig. 6)
    assert result.imbalance(result.after) < result.imbalance(result.before)
    assert result.imbalance(result.after) < 1.5
