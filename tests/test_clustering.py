"""Unit and property tests for Berger--Rigoutsos clustering.

The clustering invariants every SAMR grid generator must hold:

* every flagged cell is covered by some output box;
* output boxes are pairwise disjoint;
* output boxes stay inside the input field's box;
* each output box meets the efficiency threshold unless it cannot be
  split further.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.clustering import ClusterParams, cluster_flags, fill_efficiency
from repro.amr.flagging import FlagField


def make_field(shape, coords):
    flags = np.zeros(shape, dtype=bool)
    for c in coords:
        flags[c] = True
    return FlagField(Box((0,) * len(shape), shape), flags)


class TestClusterParams:
    def test_bad_efficiency_raises(self):
        with pytest.raises(ValueError):
            ClusterParams(min_efficiency=0.0)
        with pytest.raises(ValueError):
            ClusterParams(min_efficiency=1.5)

    def test_bad_max_cells_raises(self):
        with pytest.raises(ValueError):
            ClusterParams(max_cells=0)

    def test_bad_min_width_raises(self):
        with pytest.raises(ValueError):
            ClusterParams(min_width=0)


class TestFillEfficiency:
    def test_full_box(self):
        f = FlagField.full(Box((0, 0), (4, 4)))
        assert fill_efficiency(f, f.box) == 1.0

    def test_empty_box_is_zero(self):
        f = FlagField.full(Box((0, 0), (4, 4)))
        assert fill_efficiency(f, Box((2, 2), (2, 4))) == 0.0

    def test_partial(self):
        f = make_field((4, 4), [(0, 0), (0, 1)])
        assert fill_efficiency(f, f.box) == 2 / 16


class TestClusterFlags:
    def test_no_flags_no_boxes(self):
        f = FlagField.empty(Box((0, 0), (8, 8)))
        assert cluster_flags(f) == []

    def test_single_blob_single_box(self):
        f = make_field((8, 8), [(2, 2), (2, 3), (3, 2), (3, 3)])
        boxes = cluster_flags(f)
        assert boxes == [Box((2, 2), (4, 4))]

    def test_two_separated_blobs_split(self):
        f = make_field((16, 4), [(1, 1), (1, 2), (14, 1), (14, 2)])
        boxes = cluster_flags(f, ClusterParams(min_efficiency=0.7, min_width=1))
        assert len(boxes) == 2

    def test_max_cells_respected_for_splittable_boxes(self):
        f = FlagField.full(Box((0, 0), (16, 16)))
        params = ClusterParams(min_efficiency=0.5, max_cells=64, min_width=2)
        boxes = cluster_flags(f, params)
        assert all(b.ncells <= 64 for b in boxes)

    def test_deterministic_output(self):
        rng = np.random.default_rng(3)
        flags = rng.random((20, 20)) < 0.3
        f = FlagField(Box((0, 0), (20, 20)), flags)
        assert cluster_flags(f) == cluster_flags(f)

    def test_diagonal_line_efficient_boxes(self):
        n = 16
        f = make_field((n, n), [(i, i) for i in range(n)])
        boxes = cluster_flags(f, ClusterParams(min_efficiency=0.5, min_width=1))
        for b in boxes:
            eff = fill_efficiency(f, b)
            splittable = any(s >= 2 for s in b.shape)
            assert eff >= 0.5 or not splittable

    def test_l_shape_produces_multiple_boxes(self):
        coords = [(i, 0) for i in range(8)] + [(0, j) for j in range(8)]
        f = make_field((8, 8), coords)
        boxes = cluster_flags(f, ClusterParams(min_efficiency=0.8, min_width=1))
        assert len(boxes) >= 2
        covered = set()
        for b in boxes:
            covered |= set(b)
        assert set((c[0], c[1]) for c in coords) <= covered


@st.composite
def random_fields(draw):
    w = draw(st.integers(min_value=1, max_value=20))
    h = draw(st.integers(min_value=1, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    density = draw(st.sampled_from([0.02, 0.1, 0.3, 0.7]))
    rng = np.random.default_rng(seed)
    flags = rng.random((w, h)) < density
    return FlagField(Box((0, 0), (w, h)), flags)


class TestClusterProperties:
    @given(random_fields())
    @settings(max_examples=60, deadline=None)
    def test_coverage(self, field):
        """Every flagged cell lies in exactly one output box."""
        boxes = cluster_flags(field)
        for coord in map(tuple, field.flagged_coordinates()):
            hits = sum(b.contains_point(coord) for b in boxes)
            assert hits == 1

    @given(random_fields())
    @settings(max_examples=60, deadline=None)
    def test_disjoint_and_contained(self, field):
        boxes = cluster_flags(field)
        for i, a in enumerate(boxes):
            assert field.box.contains(a)
            assert not a.is_empty
            for b in boxes[i + 1 :]:
                assert not a.intersects(b)

    @given(random_fields())
    @settings(max_examples=60, deadline=None)
    def test_efficiency_or_unsplittable(self, field):
        params = ClusterParams(min_efficiency=0.6, min_width=2)
        for b in cluster_flags(field, params):
            eff = fill_efficiency(field, b)
            splittable = any(s >= 2 * params.min_width for s in b.shape)
            assert eff >= params.min_efficiency or not splittable

    @given(random_fields())
    @settings(max_examples=30, deadline=None)
    def test_boxes_contain_flags(self, field):
        """No output box is empty of flags (shrink-to-fit)."""
        for b in cluster_flags(field):
            assert field.restrict(b).any
