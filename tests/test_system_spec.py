"""The declarative system API: ``SystemSpec`` -> ``build_system`` (PR satellite).

Pins the contract of :mod:`repro.distsys.spec`: specs round-trip through
plain JSON, resolve into systems identical to what the deprecated
constructor zoo produced (the legacy shims now delegate to the same
resolver, behind :class:`DeprecationWarning`), flow through
``ExperimentConfig.system`` into the harness/cache/persist layers, and the
CLI accepts ``--system`` as inline JSON or a file path.
"""

from __future__ import annotations

import json
from dataclasses import FrozenInstanceError, replace

import pytest

from repro.cli import main
from repro.config import FaultParams
from repro.distsys import (
    LINK_PRESETS,
    ConstantTraffic,
    GroupSpec,
    SystemSpec,
    build_system,
    lan_spec,
    lan_system,
    multi_site_spec,
    multi_site_system,
    parallel_spec,
    parallel_system,
    wan_spec,
    wan_system,
)
from repro.exec import task_key
from repro.harness import ExperimentConfig, run_experiment, sequential_config
from repro.harness.experiment import make_faults, make_system
from repro.harness.persist import _config_from_dict, _config_to_dict

HETERO = SystemSpec(
    groups=(GroupSpec(nprocs=2, name="fast", weight=2.0),
            GroupSpec(nprocs=4, name="slow", base_speed=5e3)),
    inter_link="gigabit-lan",
    base_speed=2e4,
)


class TestSpecData:
    def test_round_trip(self):
        assert SystemSpec.from_dict(HETERO.to_dict()) == HETERO

    def test_round_trip_is_plain_json(self):
        data = json.loads(json.dumps(HETERO.to_dict()))
        assert SystemSpec.from_dict(data) == HETERO

    def test_fault_hook_round_trips(self):
        spec = replace(HETERO, fault=FaultParams(scenario="slowdown"))
        assert SystemSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            SystemSpec.from_dict({"groups": [{"nprocs": 1}], "colour": "red"})
        with pytest.raises(ValueError, match="unknown"):
            GroupSpec.from_dict({"nprocs": 1, "colour": "red"})

    def test_int_groups_shorthand(self):
        spec = SystemSpec(groups=(2, 2))
        assert spec.groups == (GroupSpec(nprocs=2), GroupSpec(nprocs=2))
        assert spec.label == "2+2"
        assert spec.nprocs == 4

    def test_frozen(self):
        with pytest.raises(FrozenInstanceError):
            HETERO.inter_link = "mren-wan"

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one group"):
            SystemSpec(groups=())
        with pytest.raises(ValueError, match="nprocs"):
            GroupSpec(nprocs=0)
        with pytest.raises(ValueError, match="weight"):
            GroupSpec(nprocs=1, weight=0.0)
        with pytest.raises(ValueError, match="preset"):
            GroupSpec(nprocs=1, intra_link="token-ring")
        with pytest.raises(ValueError, match="preset"):
            SystemSpec(groups=(1, 1), inter_link="token-ring")

    def test_link_presets_frozen_names(self):
        assert sorted(LINK_PRESETS) == ["gigabit-lan", "mren-wan", "origin2000"]


class TestResolver:
    def test_group_layout_and_speeds(self):
        system = build_system(HETERO)
        assert system.ngroups == 2 and system.nprocs == 6
        assert [g.name for g in system.groups] == ["fast", "slow"]
        # group 0 inherits the spec speed, weight applies multiplicatively
        assert system.processor(0).speed == pytest.approx(2.0 * 2e4)
        # group 1 pins its own base speed
        assert system.processor(2).speed == pytest.approx(5e3)

    def test_traffic_lands_on_inter_link(self):
        traffic = ConstantTraffic(0.4)
        system = build_system(wan_spec(2), traffic=traffic)
        assert system.inter_link(0, 1).traffic is traffic
        # intra links stay dedicated
        assert system.groups[0].intra_link.occupancy(0.0) == 0.0

    def test_independent_inter_links(self):
        system = build_system(multi_site_spec([1, 1, 1]))
        links = {tuple(sorted(pair)): link
                 for pair, link in system.inter_links.items()}
        assert [links[k].name for k in sorted(links)] == [
            "wan-0-1", "wan-0-2", "wan-1-2"]
        assert len({id(l) for l in links.values()}) == 3

    def test_shared_inter_link_is_one_instance(self):
        system = build_system(SystemSpec(groups=(1, 1, 1)))
        assert len({id(l) for l in system.inter_links.values()}) == 1

    def test_spec_rejects_legacy_keywords(self):
        with pytest.raises(TypeError, match="spec pins everything else"):
            build_system(wan_spec(2), group_names=["a", "b"])

    def test_legacy_path_rejects_traffic(self):
        with pytest.raises(TypeError, match="SystemSpec"):
            build_system([2], traffic=ConstantTraffic(0.1))


class TestLegacyShims:
    @pytest.mark.parametrize("legacy,spec_fn,args", [
        (parallel_system, parallel_spec, (4,)),
        (lan_system, lan_spec, (2,)),
        (wan_system, wan_spec, (2,)),
        (multi_site_system, multi_site_spec, ([2, 2, 2],)),
    ])
    def test_shim_warns_and_matches_spec_path(self, legacy, spec_fn, args):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            old = legacy(*args)
        new = build_system(spec_fn(*args))
        assert old.describe() == new.describe()
        assert [p.speed for p in old.processors] == \
               [p.speed for p in new.processors]
        assert [p.weight for p in old.processors] == \
               [p.weight for p in new.processors]

    def test_wan_shim_keeps_link_parameters(self):
        with pytest.warns(DeprecationWarning):
            link = wan_system(1).inter_link(0, 1)
        assert link.name == "mren-oc3-wan"
        assert link.latency == pytest.approx(5.0e-3)
        assert link.bandwidth == pytest.approx(19.0e6)

    def test_multi_site_needs_two_sites(self):
        with pytest.raises(ValueError, match="two sites"):
            multi_site_spec([4])


class TestHarnessWiring:
    def test_config_coerces_dict_spec(self):
        cfg = ExperimentConfig(system=HETERO.to_dict())
        assert cfg.system == HETERO

    def test_make_system_prefers_spec(self):
        cfg = ExperimentConfig(network="wan", procs_per_group=1, system=HETERO)
        system = make_system(cfg)
        assert [g.name for g in system.groups] == ["fast", "slow"]

    def test_make_system_fills_unpinned_base_speed(self):
        cfg = ExperimentConfig(system=SystemSpec(groups=(1, 1)))
        assert make_system(cfg).processor(0).speed == pytest.approx(
            cfg.base_speed)

    def test_spec_fault_hook_applies_when_config_has_none(self):
        spec = replace(HETERO, fault=FaultParams(scenario="slowdown"))
        assert make_faults(ExperimentConfig(system=spec)) is not None
        # an explicit config scenario wins
        cfg = ExperimentConfig(system=spec,
                               fault=FaultParams(scenario="dropout"))
        assert make_faults(cfg) is not None

    def test_sequential_config_clears_spec(self):
        cfg = ExperimentConfig(system=HETERO)
        assert sequential_config(cfg).system is None

    def test_cache_key_tracks_spec(self):
        base = ExperimentConfig(procs_per_group=1, steps=2)
        with_spec = replace(base, system=HETERO)
        other_spec = replace(base, system=replace(HETERO, base_speed=3e4))
        keys = {task_key(c, "distributed")
                for c in (base, with_spec, other_spec)}
        assert len(keys) == 3

    def test_persist_round_trip(self):
        cfg = ExperimentConfig(
            steps=2, system=replace(HETERO,
                                    fault=FaultParams(scenario="slowdown")))
        assert _config_from_dict(_config_to_dict(cfg)) == cfg

    def test_run_experiment_with_spec(self):
        cfg = ExperimentConfig(steps=2, system=SystemSpec(groups=(1, 1)))
        result = run_experiment(cfg, "distributed")
        assert result.total_time > 0


class TestCli:
    def test_inline_json(self, capsys):
        spec_json = json.dumps(SystemSpec(groups=(1, 1)).to_dict())
        rc = main(["run", "--scheme", "distributed", "--steps", "2",
                   "--system", spec_json, "--no-cache"])
        assert rc == 0
        assert "distributed" in capsys.readouterr().out

    def test_spec_file(self, capsys, tmp_path):
        path = tmp_path / "system.json"
        path.write_text(json.dumps(SystemSpec(groups=(1, 1)).to_dict()))
        rc = main(["run", "--scheme", "static", "--steps", "2",
                   "--system", str(path), "--no-cache"])
        assert rc == 0
