"""Unit tests for the recursive Berger--Colella integrator (Figs. 2 and 5)."""

from __future__ import annotations

import pytest

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import (
    IntegratorHooks,
    SAMRIntegrator,
    integration_order,
)
from repro.runtime import root_blocks


class TestIntegrationOrder:
    def test_paper_fig2(self):
        """4 levels, refinement factor 2 -> the paper's 1st..15th order."""
        assert integration_order(4, 2) == [0, 1, 2, 3, 3, 2, 3, 3, 1, 2, 3, 3, 2, 3, 3]

    def test_single_level(self):
        assert integration_order(1, 2) == [0]

    def test_two_levels_factor_4(self):
        assert integration_order(2, 4) == [0, 1, 1, 1, 1]

    def test_length_formula(self):
        # sum over levels l of ratio^l
        for nlevels in range(1, 5):
            for ratio in (2, 3, 4):
                expected = sum(ratio**l for l in range(nlevels))
                assert len(integration_order(nlevels, ratio)) == expected

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            integration_order(0, 2)
        with pytest.raises(ValueError):
            integration_order(3, 1)

    def test_coarse_steps_count(self):
        order = integration_order(4, 2)
        from collections import Counter

        counts = Counter(order)
        assert counts == {0: 1, 1: 2, 2: 4, 3: 8}


class RecordingHooks(IntegratorHooks):
    """Records every hook invocation for assertion."""

    def __init__(self):
        self.solves = []
        self.regrids = []
        self.locals = []
        self.globals = []

    def solve(self, step):
        self.solves.append(step)

    def regrid(self, level, time):
        self.regrids.append((level, time))

    def local_balance(self, level, time):
        self.locals.append((level, time))

    def global_balance(self, time):
        self.globals.append(time)


def populated_hierarchy(levels=3):
    domain = Box.cube(0, 16, 2)
    h = GridHierarchy(domain, 2, levels)
    roots = h.create_root_grids(root_blocks(domain, (2, 1)))
    # nest one child chain so all levels exist
    g = roots[0]
    for level in range(1, levels):
        g = h.add_grid(level, g.box.refine(2), g.gid)
    return h


class TestSAMRIntegrator:
    def test_trace_matches_fig2_when_all_levels_populated(self):
        h = populated_hierarchy(levels=4)
        hooks = RecordingHooks()
        integ = SAMRIntegrator(h, hooks, dt0=1.0)
        integ.step()
        assert [s.level for s in hooks.solves] == integration_order(4, 2)
        assert [s.seq for s in hooks.solves] == list(range(1, 16))

    def test_no_fine_grids_no_recursion(self):
        domain = Box.cube(0, 8, 2)
        h = GridHierarchy(domain, 2, 3)
        h.create_root_grids([domain])
        hooks = RecordingHooks()
        SAMRIntegrator(h, hooks).step()
        assert [s.level for s in hooks.solves] == [0]
        # regrid of level 1 is still attempted after the level-0 solve
        assert hooks.regrids == [(0, 1.0)]
        assert hooks.locals == []  # nothing was created

    def test_global_called_once_per_coarse_step(self):
        h = populated_hierarchy()
        hooks = RecordingHooks()
        integ = SAMRIntegrator(h, hooks)
        integ.run(3)
        assert len(hooks.globals) == 3

    def test_local_called_after_each_fine_regrid(self):
        h = populated_hierarchy(levels=3)
        hooks = RecordingHooks()
        SAMRIntegrator(h, hooks).step()
        # level 1 regridded once (after level-0 solve), level 2 after each
        # of the two level-1 solves; the static hooks keep grids in place so
        # every regrid is followed by a local balance of the rebuilt level
        assert hooks.locals == [(1, 1.0), (2, 0.5), (2, 1.0)]

    def test_times_and_dts(self):
        h = populated_hierarchy(levels=3)
        hooks = RecordingHooks()
        integ = SAMRIntegrator(h, hooks, dt0=2.0)
        integ.step()
        by_level = {}
        for s in hooks.solves:
            by_level.setdefault(s.level, []).append(s)
        assert [s.time for s in by_level[0]] == [0.0]
        assert [s.time for s in by_level[1]] == [0.0, 1.0]
        assert [s.time for s in by_level[2]] == [0.0, 0.5, 1.0, 1.5]
        assert all(s.dt == 2.0 / 2**s.level for s in hooks.solves)

    def test_clock_advances(self):
        h = populated_hierarchy()
        integ = SAMRIntegrator(h, RecordingHooks(), dt0=1.5)
        integ.run(2)
        assert integ.time == pytest.approx(3.0)
        assert integ.coarse_steps_done == 2

    def test_bad_dt_raises(self):
        h = populated_hierarchy()
        with pytest.raises(ValueError):
            SAMRIntegrator(h, RecordingHooks(), dt0=0.0)

    def test_dt_per_level(self):
        h = populated_hierarchy()
        integ = SAMRIntegrator(h, RecordingHooks(), dt0=1.0)
        assert integ.dt(0) == 1.0
        assert integ.dt(2) == 0.25
