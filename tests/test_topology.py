"""The network-topology layer: graphs, routes, contention, degeneracy.

Covers the contract promised by ``docs/TOPOLOGY.md``:

* route tables are a pure function of the edge list (deterministic across
  independent rebuilds, seeded random graphs included);
* routes are symmetric -- ``route(b, a)`` is ``route(a, b)`` reversed;
* multi-hop cost is ``alpha`` summed over distinct links, ``beta`` from the
  bottleneck link, per-message overhead paid at the endpoint links only;
* bytes from every route crossing an edge aggregate into that edge's busy
  time (shared-edge contention);
* classic two-level systems resolve to a *derived* star/mesh built from the
  identical ``Link`` objects, keeping the historical fast path bit-for-bit;
* fault schedules can target individual edges by name.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.config import FaultParams
from repro.distsys import (
    EdgeSpec,
    GroupSpec,
    NetworkTopology,
    SystemSpec,
    TopologySpec,
    build_system,
    fat_tree,
    from_edges,
    ring,
    star,
    torus,
    wan_mesh,
    wan_system,
)
from repro.distsys.comm import (
    CommGeometry,
    Message,
    MessageBatch,
    MessageKind,
    comm_phase_time,
)
from repro.distsys.system import lan_system, multi_site_system
from repro.distsys.topology import degenerate_topology, resolve_topology
from repro.distsys.traffic import ConstantTraffic
from repro.faults.schedule import FaultSchedule, LinkDegradationFault


def _spec_for(topo_spec: TopologySpec, nprocs: int = 1) -> SystemSpec:
    """A SystemSpec with one ``nprocs``-processor group per topology node."""
    return SystemSpec(
        groups=tuple(GroupSpec(name=n, nprocs=nprocs) for n in topo_spec.groups),
        topology=topo_spec,
    )


def _random_topology_spec(rng: random.Random) -> TopologySpec:
    """A seeded random connected graph: spanning tree + extra chords."""
    ngroups = rng.randint(2, 6)
    nswitches = rng.randint(0, 3)
    groups = tuple(f"g{i}" for i in range(ngroups))
    switches = tuple(f"s{i}" for i in range(nswitches))
    nodes = list(groups + switches)
    edges = []

    def _edge(u, v):
        name = f"e{len(edges)}"
        # random latencies force non-trivial Dijkstra decisions
        return EdgeSpec(u=u, v=v, name=name, link=rng.choice(
            ("gigabit-lan", "mren-wan")),
            latency=rng.uniform(1e-4, 1e-2))

    order = nodes[:]
    rng.shuffle(order)
    for i in range(1, len(order)):  # spanning tree: connected by construction
        edges.append(_edge(order[i], order[rng.randrange(i)]))
    have = {frozenset((e.u, e.v)) for e in edges}
    for _ in range(rng.randint(0, 4)):  # chords
        u, v = rng.sample(nodes, 2)
        if frozenset((u, v)) not in have:
            have.add(frozenset((u, v)))
            edges.append(_edge(u, v))
    return TopologySpec(groups=groups, switches=switches, edges=tuple(edges))


SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)


class TestRouteDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_rebuild_yields_identical_route_table(self, seed):
        spec = _random_topology_spec(random.Random(seed))
        first = resolve_topology(spec).route_table()
        second = resolve_topology(spec).route_table()
        assert first == second

    @pytest.mark.parametrize("seed", SEEDS)
    def test_json_round_trip_preserves_routes(self, seed):
        spec = _random_topology_spec(random.Random(seed))
        restored = TopologySpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert (resolve_topology(restored).route_table()
                == resolve_topology(spec).route_table())

    def test_routes_ignore_traffic_weather(self):
        """Dijkstra weighs zero-load latency only: background traffic must
        never reroute (fault overlays rely on this)."""
        spec = star(4)
        idle = resolve_topology(spec)
        stormy = resolve_topology(spec, ConstantTraffic(0.9))
        assert idle.route_table() == stormy.route_table()


class TestRouteGeometry:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_routes_are_symmetric(self, seed):
        topo = resolve_topology(_random_topology_spec(random.Random(seed)))
        for a in range(topo.ngroups):
            for b in range(topo.ngroups):
                if a == b:
                    continue
                fwd = topo.route(a, b).edge_names()
                rev = topo.route(b, a).edge_names()
                assert fwd == tuple(reversed(rev))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_routes_connect_their_endpoints(self, seed):
        topo = resolve_topology(_random_topology_spec(random.Random(seed)))
        for a in range(topo.ngroups):
            for b in range(topo.ngroups):
                if a == b:
                    continue
                route = topo.route(a, b)
                na, nb = topo.group_nodes[a], topo.group_nodes[b]
                assert na in (route.edges[0].u, route.edges[0].v)
                assert nb in (route.edges[-1].u, route.edges[-1].v)

    def test_route_rejects_self_pair(self):
        topo = resolve_topology(star(3))
        with pytest.raises(ValueError):
            topo.route(1, 1)

    def test_disconnected_graph_rejected(self):
        spec = TopologySpec(
            groups=("a", "b", "c"),
            edges=(EdgeSpec(u="a", v="b"),),  # c unreachable
        )
        with pytest.raises(ValueError, match="no path"):
            resolve_topology(spec)


class TestRouteCost:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_alpha_sums_beta_bottlenecks(self, seed):
        topo = resolve_topology(_random_topology_spec(random.Random(seed)))
        for a in range(topo.ngroups):
            for b in range(a + 1, topo.ngroups):
                route = topo.route(a, b)
                assert route.alpha(0.0) == pytest.approx(
                    sum(lk.alpha(0.0) for lk in route.links))
                assert route.beta(0.0) == pytest.approx(
                    max(lk.beta(0.0) for lk in route.links))

    def test_overhead_paid_at_endpoints_only(self):
        # g0 -- s0 -- s1 -- g1: three edges, overhead from first + last
        spec = TopologySpec(
            groups=("g0", "g1"), switches=("s0", "s1"),
            edges=(EdgeSpec(u="g0", v="s0"), EdgeSpec(u="s0", v="s1"),
                   EdgeSpec(u="s1", v="g1")),
        )
        route = resolve_topology(spec).route(0, 1)
        assert len(route.links) == 3
        assert route.per_message_overhead == pytest.approx(
            route.links[0].per_message_overhead
            + route.links[-1].per_message_overhead)

    def test_single_link_route_matches_link_exactly(self):
        """The degenerate path must delegate to Link.transfer_time so the
        two-level goldens stay bit-for-bit."""
        topo = resolve_topology(wan_mesh(2))
        route = topo.route(0, 1)
        link = route.links[0]
        for nbytes in (0, 64, 1.5e6):
            assert route.transfer_time(nbytes, 2.0) == link.transfer_time(
                nbytes, 2.0)

    def test_multi_hop_transfer_time_formula(self):
        spec = TopologySpec(
            groups=("g0", "g1"), switches=("hub",),
            edges=(EdgeSpec(u="g0", v="hub"), EdgeSpec(u="hub", v="g1")),
        )
        route = resolve_topology(spec).route(0, 1)
        nbytes = 4096.0
        expected = (route.alpha(0.0) + route.per_message_overhead
                    + nbytes * route.beta(0.0))
        assert route.transfer_time(nbytes, 0.0) == pytest.approx(expected)


class TestSharedEdgeContention:
    def _star_system(self):
        return build_system(_spec_for(star(3)))

    def test_shared_spoke_aggregates_bytes(self):
        """Two bundles 0->1 and 0->2 both cross g0's spoke: its busy time
        carries the *sum* of their bytes plus both bundles' overheads."""
        system = self._star_system()
        topo = system.topology
        spoke = topo.route(0, 1).links[0]   # g0 -- hub
        b1, b2 = 10_000.0, 30_000.0
        msgs = [Message(0, 1, b1, MessageKind.SIBLING),
                Message(0, 2, b2, MessageKind.SIBLING)]
        r = comm_phase_time(system, msgs, 0.0)
        shared_busy = (spoke.alpha(0.0) + 2 * spoke.per_message_overhead
                       + (b1 + b2) * spoke.beta(0.0))
        assert r.elapsed == pytest.approx(shared_busy)

    def test_disjoint_routes_do_not_contend(self):
        """1->0 and 2->0 enter over distinct spokes but share g0's spoke as
        the terminal hop -- while 1->2 avoids g0's spoke entirely."""
        system = self._star_system()
        topo = system.topology
        spoke1 = topo.route(1, 2).links[0]  # g1 -- hub
        nbytes = 5_000.0
        r = comm_phase_time(
            system, [Message(1, 2, nbytes, MessageKind.SIBLING)], 0.0)
        busy = (spoke1.alpha(0.0) + spoke1.per_message_overhead
                + nbytes * spoke1.beta(0.0))
        assert r.elapsed == pytest.approx(busy)

    def test_batch_path_matches_scalar(self):
        """The vectorized batch path reproduces the scalar loop bit-for-bit
        on multi-hop geometries."""
        system = build_system(_spec_for(torus((2, 3)), nprocs=2))
        rng = random.Random(42)
        n = 60
        src = [rng.randrange(12) for _ in range(n)]
        dst = [rng.randrange(12) for _ in range(n)]
        nbytes = [float(rng.randrange(1, 100_000)) for _ in range(n)]
        msgs = [Message(s, d, b, MessageKind.SIBLING)
                for s, d, b in zip(src, dst, nbytes)]
        batch = MessageBatch.of_kind(src, dst, nbytes, MessageKind.SIBLING)
        geo = CommGeometry(system)
        scalar = comm_phase_time(system, msgs, 0.5, geometry=geo)
        vector = comm_phase_time(system, batch, 0.5, geometry=geo)
        assert vector.elapsed == scalar.elapsed  # exact, not approx
        assert vector.remote_bytes == scalar.remote_bytes
        assert vector.remote_messages == scalar.remote_messages


class TestDegenerateDerivation:
    """Two-level systems become derived topologies over the same Links."""

    def test_wan_resolves_to_single_shared_edge(self):
        system = wan_system(2, ConstantTraffic(0.0))
        topo = system.topology
        assert topo.derived
        assert len(topo.edges) == 1
        assert system.route_between(0, 1).links[0] is system.inter_link(0, 1)

    def test_shared_link_three_groups_becomes_star(self):
        shared = wan_system(1, ConstantTraffic(0.0)).inter_link(0, 1)
        topo = degenerate_topology(["a", "b", "c"],
                                   {(i, j): shared
                                    for i in range(3) for j in range(3)
                                    if i != j})
        assert topo.derived
        assert "backbone" in topo.nodes
        # every spoke IS the one physical medium
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert topo.route(a, b).links == (shared,)

    def test_multi_site_keeps_per_pair_identity(self):
        system = multi_site_system([1, 1, 1], ConstantTraffic(0.0))
        topo = system.topology
        assert topo.derived
        assert len(topo.edges) == 3  # complete mesh, one edge per pair
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert (system.route_between(a, b).links[0]
                            is system.inter_link(a, b))

    def test_two_level_geometry_keeps_fast_path(self):
        for system in (wan_system(2, ConstantTraffic(0.0)),
                       lan_system(2, ConstantTraffic(0.0)),
                       multi_site_system([2, 2], ConstantTraffic(0.0))):
            assert not CommGeometry(system).multihop

    def test_explicit_topology_geometry_is_multihop(self):
        system = build_system(_spec_for(star(3)))
        assert CommGeometry(system).multihop

    def test_group_neighbors_complete_on_degenerate(self):
        system = wan_system(2, ConstantTraffic(0.0))
        assert system.group_neighbors(0) == (1,)

    def test_group_neighbors_follow_graph(self):
        system = build_system(_spec_for(ring(4)))
        assert system.group_neighbors(0) == (1, 3)
        assert system.group_neighbors(2) == (1, 3)


class TestFaultEdgeAddressing:
    def _ring_system(self):
        return build_system(_spec_for(ring(4)), traffic=ConstantTraffic(0.1))

    def test_named_edge_degraded_others_untouched(self):
        system = self._ring_system()
        target = system.topology.edges[0].name
        faulted = FaultSchedule([
            LinkDegradationFault(start=0.0, end=5.0, occupancy=0.6,
                                 edge=target)
        ]).apply(system)
        hit = faulted.topology.edge_named(target).link
        assert hit.traffic.occupancy(1.0) == pytest.approx(0.7)
        assert hit.traffic.occupancy(6.0) == pytest.approx(0.1)
        for e in faulted.topology.edges:
            if e.name != target:
                assert e.link.traffic.occupancy(1.0) == pytest.approx(0.1)

    def test_routes_unchanged_under_degradation(self):
        system = self._ring_system()
        target = system.topology.edges[0].name
        faulted = FaultSchedule([
            LinkDegradationFault(start=0.0, end=5.0, occupancy=0.6,
                                 edge=target)
        ]).apply(system)
        assert (faulted.topology.route_table()
                == system.topology.route_table())

    def test_unknown_edge_name_rejected(self):
        system = self._ring_system()
        with pytest.raises(ValueError, match="edge"):
            FaultSchedule([
                LinkDegradationFault(start=0.0, end=1.0, edge="nope")
            ]).apply(system)

    def test_edge_and_groups_together_rejected(self):
        with pytest.raises(ValueError):
            LinkDegradationFault(groups=(0, 1), edge="e0")


class TestBuilders:
    def test_star_shape(self):
        spec = star(5)
        assert len(spec.groups) == 5
        assert spec.switches == ("hub",)
        assert len(spec.edges) == 5

    def test_ring_shape_and_validation(self):
        assert len(ring(4).edges) == 4
        with pytest.raises(ValueError):
            ring(2)

    def test_torus_shape(self):
        spec = torus((2, 3))
        assert len(spec.groups) == 6
        assert len(spec.edges) == 9  # 3 edges along dim0 pairs + 6 rings
        # extent-1 dims dropped, extent-2 dims single-edged
        assert len(torus((1, 4)).edges) == 4

    def test_torus_rejects_degenerate(self):
        with pytest.raises(ValueError):
            torus((1, 1))

    def test_fat_tree_shape(self):
        spec = fat_tree(4)
        assert len(spec.groups) == 8  # k * k/2
        assert len(spec.switches) == 6  # 4 pods + 2 cores
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_wan_mesh_shape(self):
        assert len(wan_mesh(4).edges) == 6
        with pytest.raises(ValueError):
            wan_mesh(1)

    def test_from_edges_accepts_dicts(self):
        spec = from_edges(
            groups=("a", "b"),
            edges=[{"u": "a", "v": "b", "link": "mren-wan"}],
        )
        assert spec.edges[0].name == "a--b"
        assert resolve_topology(spec).route(0, 1).edge_names() == ("a--b",)

    def test_duplicate_edge_names_rejected(self):
        with pytest.raises(ValueError, match="[Dd]uplicate"):
            TopologySpec(
                groups=("a", "b"),
                edges=(EdgeSpec(u="a", v="b", name="e"),
                       EdgeSpec(u="b", v="a", name="e")),
            )

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec(groups=("a", "b"),
                         edges=(EdgeSpec(u="a", v="zz"),))


class TestSpecIntegration:
    def test_system_spec_round_trips_with_topology(self):
        spec = _spec_for(torus((2, 2)), nprocs=2)
        restored = SystemSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_topology_key_absent_for_two_level_specs(self):
        """Pre-topology cache keys must not change: the field is omitted."""
        from repro.distsys import wan_spec

        assert "topology" not in wan_spec(2).to_dict()

    def test_group_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="group"):
            SystemSpec(groups=(GroupSpec(nprocs=1),), topology=star(3))

    def test_unknown_topology_field_rejected(self):
        data = star(2).to_dict()
        data["colour"] = "red"
        with pytest.raises(ValueError, match="unknown"):
            TopologySpec.from_dict(data)

    def test_explicit_topology_rejects_mismatched_groups(self):
        with pytest.raises(ValueError):
            NetworkTopology(nodes=("a",), group_nodes=(0, 0), edges=())
