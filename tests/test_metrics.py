"""Unit tests for metrics: efficiency (Fig. 8), imbalance, RunResult."""

from __future__ import annotations

import pytest

from repro.distsys.network import mren_wan
from repro.distsys.system import build_system, parallel_system
from repro.metrics import (
    RunResult,
    efficiency,
    imbalance_ratio,
    max_min_ratio,
    normalized_std,
    relative_power,
)


class TestEfficiency:
    def test_perfect_scaling(self):
        # E(1)=100, E=25 on 4 procs -> efficiency 1.0
        assert efficiency(100.0, 25.0, 4) == pytest.approx(1.0)

    def test_half_efficiency(self):
        assert efficiency(100.0, 50.0, 4) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            efficiency(0, 1, 1)
        with pytest.raises(ValueError):
            efficiency(1, 0, 1)
        with pytest.raises(ValueError):
            efficiency(1, 1, 0)

    def test_relative_power_homogeneous(self):
        assert relative_power(parallel_system(8)) == 8.0

    def test_relative_power_weighted(self):
        s = build_system([2, 2], inter_link=mren_wan(), group_weights=[1.0, 2.0])
        assert relative_power(s) == pytest.approx(6.0)
        assert relative_power(s, reference_weight=2.0) == pytest.approx(3.0)


class TestImbalance:
    def test_imbalance_ratio(self):
        assert imbalance_ratio({0: 10.0, 1: 10.0}) == 1.0
        assert imbalance_ratio({0: 30.0, 1: 10.0}) == pytest.approx(1.5)

    def test_max_min_ratio(self):
        assert max_min_ratio({0: 10.0, 1: 5.0}) == 2.0
        assert max_min_ratio({0: 10.0, 1: 0.0}) == float("inf")
        assert max_min_ratio({0: 0.0, 1: 0.0}) == 1.0

    def test_normalized_std(self):
        assert normalized_std({0: 5.0, 1: 5.0}) == 0.0
        assert normalized_std({0: 0.0, 1: 10.0}) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            imbalance_ratio({})


class TestRunResult:
    def make(self, total, scheme="distributed DLB"):
        return RunResult(
            scheme=scheme, app="ShockPool3D", system="2x2procs", nsteps=4,
            total_time=total, compute_time=total * 0.6, comm_time=total * 0.4,
            balance_overhead=0.1, probe_time=0.01, local_comm_busy=0.2,
            remote_comm_busy=0.3, comm_by_purpose={"ghost": total * 0.4},
        )

    def test_improvement_over(self):
        fast = self.make(8.0)
        slow = self.make(10.0, scheme="parallel DLB")
        assert fast.improvement_over(slow) == pytest.approx(0.2)
        assert slow.improvement_over(fast) == pytest.approx(-0.25)

    def test_improvement_over_zero_raises(self):
        with pytest.raises(ValueError):
            self.make(1.0).improvement_over(self.make(0.0))

    def test_comm_fraction(self):
        assert self.make(10.0).comm_fraction == pytest.approx(0.4)

    def test_summary_mentions_key_facts(self):
        text = self.make(10.0).summary()
        assert "distributed DLB" in text
        assert "ShockPool3D" in text
        assert "ghost" in text
