"""The repro.api facade: a stable, importable surface with one call shape.

``EXPECTED_API`` is a frozen copy of ``repro.api.__all__``: removing or
renaming an entry is a breaking change and must fail here first.  Adding a
name is fine -- extend this list in the same change.
"""

import inspect
import warnings

import pytest

import repro.api as api
from repro.api import (
    ExperimentConfig,
    replicate,
    run_experiment,
    run_fault_scenarios,
    run_paired,
    run_sequential,
    run_sweep,
)

EXPECTED_API = [
    # configuration
    "ExperimentConfig",
    "SimParams",
    "SchemeParams",
    "FaultParams",
    "ExecParams",
    "TraceParams",
    "ServiceConfig",
    "sequential_config",
    # system construction
    "SystemSpec",
    "GroupSpec",
    "LINK_PRESETS",
    "build_system",
    "parallel_spec",
    "lan_spec",
    "wan_spec",
    "multi_site_spec",
    # network topologies
    "NetworkTopology",
    "TopologySpec",
    "EdgeSpec",
    "Route",
    "star",
    "ring",
    "torus",
    "fat_tree",
    "wan_mesh",
    "from_edges",
    "DIFFUSION_SOS_SPEC",
    "DIFFUSION_DIMEX_SPEC",
    # schemes: policy protocols + registry
    "WeightPolicy",
    "DecisionPolicy",
    "GlobalPartitionPolicy",
    "LocalBalancePolicy",
    "SchemeSpec",
    "register_scheme",
    "available_schemes",
    "make_scheme",
    # entry points
    "quick_run",
    "run_experiment",
    "run_sequential",
    "run_paired",
    "run_sweep",
    "run_fault_scenarios",
    "replicate",
    "execute_scheme",
    "PAPER_CONFIGS",
    "FAULT_SWEEP_SCENARIOS",
    # results
    "RunResult",
    "PairedResult",
    "SweepResult",
    "ReplicatedResult",
    "efficiency",
    # execution engines
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ExecTask",
    "ExecStats",
    "ResultCache",
    "get_default_executor",
    "set_default_executor",
    # observability
    "Tracer",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "write_span_jsonl",
    "flame_summary",
    "validate_chrome_trace",
    "prometheus_text",
    # serving daemon
    "ServeServer",
    "ServeClient",
    "AsyncServeClient",
    "JobResult",
    "ServeError",
    "QueueFullError",
    # workload traces
    "Trace",
    "TraceFormatError",
    "TraceReplayError",
    "TraceReplayRunner",
    "record_run",
    "replay_trace",
    "read_trace",
    "write_trace",
    "SyntheticWorkload",
    "register_synth_workload",
    "available_synth_workloads",
    "make_synth_workload",
    # serving simulator (DLB as a request router)
    "simulate_service",
    "ServiceReport",
    "LatencyHistogram",
    "report_hash",
    "format_service_report",
    "register_router_policy",
    "available_router_policies",
    "make_router_policy",
    "available_arrival_presets",
    # persistence
    "save_run",
    "load_run",
    "save_sweep",
    "load_sweep",
    "save_replicated",
    "load_replicated",
    "save_fault_scenarios",
    "load_fault_scenarios",
    # reporting and timelines
    "format_table",
    "format_percent",
    "comparison_block",
    "step_timeline",
    "render_step_timeline",
    "render_event_listing",
]

SMALL = ExperimentConfig(procs_per_group=1, steps=2)


class TestSurface:
    def test_all_is_frozen(self):
        assert api.__all__ == EXPECTED_API

    def test_every_name_importable_and_bound(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))


class TestCallShape:
    """Every run_* entry point takes (config, ..., *, executor, tracer, seed)."""

    @pytest.mark.parametrize("fn", [run_experiment, run_sequential,
                                    run_paired, run_sweep,
                                    run_fault_scenarios, replicate])
    def test_unified_keywords(self, fn):
        params = inspect.signature(fn).parameters
        for name in ("executor", "tracer", "seed"):
            if fn in (run_sequential,) and name == "executor":
                continue  # sequential runs in-process by design
            assert name in params, f"{fn.__name__} lacks {name}="
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY
            assert params[name].default is None

    def test_first_parameter_is_config(self):
        for fn in (run_experiment, run_sequential, run_paired, run_sweep,
                   run_fault_scenarios, replicate):
            first = next(iter(inspect.signature(fn).parameters))
            assert first == "config", fn.__name__


class TestSeedOverride:
    def test_seed_overrides_traffic_seed(self):
        cfg = ExperimentConfig(procs_per_group=1, steps=2,
                               traffic_kind="bursty", traffic_seed=1)
        base = run_experiment(cfg, "distributed")
        reseeded = run_experiment(cfg, "distributed", seed=99)
        explicit = run_experiment(
            ExperimentConfig(procs_per_group=1, steps=2,
                             traffic_kind="bursty", traffic_seed=99),
            "distributed")
        assert reseeded.total_time == explicit.total_time
        assert reseeded.total_time != base.total_time

    def test_replicate_seed_anchors_consecutive_seeds(self):
        rep = replicate(SMALL, seed=5)
        assert rep.seeds == [5, 6, 7]


class TestLegacyShims:
    def test_run_paired_positional_warns_and_matches(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            keyword = run_paired(SMALL, with_sequential=True)
        with pytest.warns(DeprecationWarning, match="with_sequential"):
            legacy = run_paired(SMALL, True)
        assert legacy.sequential is not None
        assert legacy.distributed.total_time == keyword.distributed.total_time

    def test_run_sweep_positional_warns_and_matches(self):
        keyword = run_sweep(SMALL, procs_per_group=(1,))
        with pytest.warns(DeprecationWarning, match="procs_per_group"):
            legacy = run_sweep(SMALL, (1,))
        assert [p.improvement for p in legacy.pairs] == [
            p.improvement for p in keyword.pairs]

    def test_run_fault_scenarios_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="scenarios"):
            results = run_fault_scenarios(SMALL, ("none",))
        assert list(results) == ["none"]

    def test_replicate_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="seeds"):
            rep = replicate(SMALL, (3,))
        assert rep.seeds == [3]

    def test_run_experiment_scheme_name_keyword_warns(self):
        with pytest.warns(DeprecationWarning, match="scheme_name"):
            r = run_experiment(SMALL, scheme_name="parallel")
        assert r.scheme == "parallel DLB"

    def test_too_many_positionals_raise(self):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                run_paired(SMALL, True, None, "extra")

    def test_positional_keyword_collision_raises(self):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                run_paired(SMALL, True, with_sequential=True)
