"""Tests for JSON persistence and timeline rendering."""

from __future__ import annotations

import json

import pytest

from repro.harness import (
    ExperimentConfig,
    load_fault_scenarios,
    load_replicated,
    load_run,
    load_sweep,
    render_event_listing,
    render_step_timeline,
    replicate,
    run_experiment,
    run_fault_scenarios,
    run_sweep,
    save_fault_scenarios,
    save_replicated,
    save_run,
    save_sweep,
    step_timeline,
)
from repro.harness.persist import run_result_from_dict, run_result_to_dict


@pytest.fixture(scope="module")
def result():
    return run_experiment(ExperimentConfig(procs_per_group=2, steps=3), "distributed")


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        ExperimentConfig(procs_per_group=1, steps=2),
        procs_per_group=(1,), with_sequential=True,
    )


class TestRunPersistence:
    def test_dict_roundtrip(self, result):
        d = run_result_to_dict(result)
        back = run_result_from_dict(d)
        assert back.total_time == result.total_time
        assert back.scheme == result.scheme
        assert back.remote_bytes_by_kind == result.remote_bytes_by_kind
        assert back.events is None  # events summarised, not kept

    def test_dict_is_json_safe(self, result):
        json.dumps(run_result_to_dict(result))

    def test_event_counts_summarised(self, result):
        d = run_result_to_dict(result)
        assert d["event_counts"]["ComputeEvent"] > 0

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_run(result, path)
        back = load_run(path)
        assert back.total_time == pytest.approx(result.total_time)
        assert back.comm_by_purpose == result.comm_by_purpose

    def test_wrong_kind_rejected(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_run(result, path)
        with pytest.raises(ValueError):
            load_sweep(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "kind": "run", "run": {}}))
        with pytest.raises(ValueError):
            load_run(path)


class TestSweepPersistence:
    def test_file_roundtrip(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        back = load_sweep(path)
        assert len(back.pairs) == len(sweep.pairs)
        assert back.pairs[0].improvement == pytest.approx(sweep.pairs[0].improvement)
        # derived efficiency still computes from the reloaded sequential run
        assert back.pairs[0].parallel_efficiency == pytest.approx(
            sweep.pairs[0].parallel_efficiency
        )

    def test_config_reconstructed(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        back = load_sweep(path)
        assert back.pairs[0].config.label == sweep.pairs[0].config.label
        assert back.pairs[0].config.gamma == sweep.pairs[0].config.gamma


class TestReplicatedPersistence:
    @pytest.fixture(scope="class")
    def replicated(self):
        return replicate(
            ExperimentConfig(procs_per_group=1, steps=2), seeds=(1, 2)
        )

    def test_file_roundtrip(self, replicated, tmp_path):
        path = tmp_path / "replicated.json"
        save_replicated(replicated, path)
        back = load_replicated(path)
        assert back.seeds == replicated.seeds
        assert len(back.pairs) == len(replicated.pairs)
        # the spread statistics recompute identically from reloaded pairs
        assert back.mean_improvement == pytest.approx(replicated.mean_improvement)
        assert back.std_improvement == pytest.approx(replicated.std_improvement)
        assert back.summary() == replicated.summary()

    def test_full_config_survives(self, replicated, tmp_path):
        path = tmp_path / "replicated.json"
        save_replicated(replicated, path)
        back = load_replicated(path)
        # per-seed configs keep their traffic seed (format-1 sweep files
        # drop it; the replicated format must not)
        assert [p.config.traffic_seed for p in back.pairs] == [1, 2]
        assert back.pairs[0].config == replicated.pairs[0].config

    def test_wrong_kind_rejected(self, replicated, tmp_path):
        path = tmp_path / "replicated.json"
        save_replicated(replicated, path)
        with pytest.raises(ValueError):
            load_sweep(path)
        with pytest.raises(ValueError):
            load_fault_scenarios(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "kind": "replicated"}))
        with pytest.raises(ValueError):
            load_replicated(path)


class TestFaultScenarioPersistence:
    @pytest.fixture(scope="class")
    def scenarios(self):
        return run_fault_scenarios(
            ExperimentConfig(procs_per_group=1, steps=2),
            scenarios=("none", "slowdown"),
        )

    def test_file_roundtrip_preserves_order(self, scenarios, tmp_path):
        path = tmp_path / "faults.json"
        save_fault_scenarios(scenarios, path)
        back = load_fault_scenarios(path)
        assert list(back) == list(scenarios)
        for name in scenarios:
            assert back[name].improvement == pytest.approx(
                scenarios[name].improvement
            )

    def test_fault_params_survive(self, scenarios, tmp_path):
        path = tmp_path / "faults.json"
        save_fault_scenarios(scenarios, path)
        back = load_fault_scenarios(path)
        assert back["none"].config.fault is None
        assert back["slowdown"].config.fault == scenarios["slowdown"].config.fault

    def test_wrong_kind_rejected(self, scenarios, tmp_path):
        path = tmp_path / "faults.json"
        save_fault_scenarios(scenarios, path)
        with pytest.raises(ValueError):
            load_replicated(path)


class TestTimeline:
    def test_one_row_per_coarse_step(self, result):
        steps = step_timeline(result.events)
        assert len(steps) == result.nsteps

    def test_compute_sums_match_total(self, result):
        steps = step_timeline(result.events)
        total_compute = sum(s["compute"] for s in steps)
        assert total_compute == pytest.approx(result.compute_time, rel=1e-9)

    def test_regrid_counts(self, result):
        steps = step_timeline(result.events)
        # 3 levels -> 1 + 2 regrids per coarse step
        assert all(s["regrids"] == 3 for s in steps)

    def test_render_table(self, result):
        out = render_step_timeline(result.events)
        assert "Per-coarse-step activity" in out
        assert str(result.nsteps - 1) in out

    def test_event_listing_limit(self, result):
        out = render_event_listing(result.events, limit=5)
        assert "more events" in out
        assert len(out.splitlines()) == 6

    def test_event_listing_full(self, result):
        out = render_event_listing(result.events)
        assert len(out.splitlines()) == len(result.events)
