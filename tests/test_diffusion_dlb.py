"""Unit/integration tests for the diffusive DLB baseline."""

from __future__ import annotations

import pytest

from repro.amr.applications import ShockPool3D
from repro.core import DiffusionDLB, DistributedDLB
from repro.distsys import ConstantTraffic, wan_system
from repro.metrics.imbalance import imbalance_ratio
from repro.runtime import SAMRRunner


class TestDiffusionTargets:
    def targets(self, loads, weights=None, sweeps=1):
        scheme = DiffusionDLB(sweeps=sweeps)
        w = weights or {pid: 1.0 for pid in loads}
        return scheme._diffusion_targets(loads, w)

    def test_single_processor_identity(self):
        assert self.targets({0: 10.0}) == {0: 10.0}

    def test_total_load_conserved(self):
        t = self.targets({0: 12.0, 1: 0.0, 2: 6.0})
        assert sum(t.values()) == pytest.approx(18.0)

    def test_one_sweep_moves_toward_mean(self):
        t = self.targets({0: 12.0, 1: 0.0})
        # n=2, alpha=1/2: each ends exactly at the mean
        assert t[0] == pytest.approx(6.0)
        assert t[1] == pytest.approx(6.0)

    def test_three_procs_partial_convergence(self):
        t = self.targets({0: 9.0, 1: 0.0, 2: 0.0})
        # alpha=1/3: l0' = 9 + (9 - 27)/3 = 3; others 3 each
        assert t[0] == pytest.approx(3.0)
        assert t[1] == pytest.approx(3.0)

    def test_more_sweeps_converge_further(self):
        loads = {0: 16.0, 1: 0.0, 2: 0.0, 3: 0.0}
        one = self.targets(loads, sweeps=1)
        many = self.targets(loads, sweeps=5)
        assert imbalance_ratio(many) <= imbalance_ratio(one)

    def test_heterogeneous_weights_respected(self):
        """Diffusion in normalised space: a weight-3 processor ends with 3x
        the load of a weight-1 processor."""
        t = self.targets({0: 8.0, 1: 0.0}, weights={0: 1.0, 1: 3.0}, sweeps=10)
        assert t[1] / t[0] == pytest.approx(3.0, rel=1e-6)

    def test_bad_sweeps_raise(self):
        with pytest.raises(ValueError):
            DiffusionDLB(sweeps=0)


class TestDiffusionRuns:
    def run(self, steps=4, sweeps=1):
        app = ShockPool3D(domain_cells=16, max_levels=3)
        system = wan_system(2, ConstantTraffic(0.3), base_speed=2e4)
        return SAMRRunner(app, system, DiffusionDLB(sweeps=sweeps)).run(steps)

    def test_completes_and_balances(self):
        r = self.run()
        assert r.total_time > 0
        assert r.scheme == "diffusion DLB"

    def test_no_global_phase(self):
        r = self.run()
        assert r.redistributions == 0
        assert r.probe_time == 0.0

    def test_diffusion_leaks_parent_child_over_wan(self):
        """Diffusion starts children local but its sweeps migrate them
        anywhere, so remote parent-child traffic appears; the paper's
        scheme keeps it identically zero.  (Total-time ordering between
        the two is workload-dependent -- diffusion with parent-local
        placement is a genuinely competitive baseline at moderate scale,
        which the scheme-comparison benchmark reports.)"""
        app = ShockPool3D(domain_cells=16, max_levels=3)
        system = wan_system(4, ConstantTraffic(0.45), base_speed=2e4)
        diff = SAMRRunner(app, system, DiffusionDLB()).run(5)
        app2 = ShockPool3D(domain_cells=16, max_levels=3)
        system2 = wan_system(4, ConstantTraffic(0.45), base_speed=2e4)
        dist = SAMRRunner(app2, system2, DistributedDLB()).run(5)
        assert diff.remote_bytes_by_kind.get("parent_child", 0.0) > 0.0
        assert dist.remote_bytes_by_kind.get("parent_child", 0.0) == 0.0

    def test_compute_balance_improves_over_static(self):
        """Diffusion does reduce compute imbalance relative to no DLB."""
        from repro.core import StaticDLB

        app = ShockPool3D(domain_cells=16, max_levels=3)
        system = wan_system(2, ConstantTraffic(0.3), base_speed=2e4)
        static = SAMRRunner(app, system, StaticDLB()).run(5)
        app2 = ShockPool3D(domain_cells=16, max_levels=3)
        system2 = wan_system(2, ConstantTraffic(0.3), base_speed=2e4)
        diff = SAMRRunner(app2, system2, DiffusionDLB()).run(5)
        assert diff.compute_time < static.compute_time
