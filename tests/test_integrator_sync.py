"""Tests for the synchronize hook and integrator/driver interplay."""

from __future__ import annotations


from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import IntegratorHooks, SAMRIntegrator
from repro.runtime import root_blocks


class SyncRecorder(IntegratorHooks):
    def __init__(self):
        self.calls = []

    def solve(self, step):
        self.calls.append(("solve", step.level))

    def regrid(self, level, time):
        self.calls.append(("regrid", level))

    def local_balance(self, level, time):
        self.calls.append(("balance", level))

    def global_balance(self, time):
        self.calls.append(("global", -1))

    def synchronize(self, level, time):
        self.calls.append(("sync", level))


def populated(levels=3):
    domain = Box.cube(0, 16, 2)
    h = GridHierarchy(domain, 2, levels)
    roots = h.create_root_grids(root_blocks(domain, (2, 1)))
    g = roots[0]
    for level in range(1, levels):
        g = h.add_grid(level, g.box.refine(2), g.gid)
    return h


class TestSynchronizeHook:
    def test_called_after_each_subcycle(self):
        h = populated(3)
        hooks = SyncRecorder()
        SAMRIntegrator(h, hooks).step()
        syncs = [c for c in hooks.calls if c[0] == "sync"]
        # level-1 subcycle completes twice (sync(1) x2) inside one sync(0)
        assert syncs.count(("sync", 1)) == 2
        assert syncs.count(("sync", 0)) == 1

    def test_sync_follows_fine_solves(self):
        h = populated(2)
        hooks = SyncRecorder()
        SAMRIntegrator(h, hooks).step()
        calls = hooks.calls
        i_sync = calls.index(("sync", 0))
        fine_solves = [i for i, c in enumerate(calls) if c == ("solve", 1)]
        assert len(fine_solves) == 2
        assert all(i < i_sync for i in fine_solves)

    def test_no_sync_without_fine_grids(self):
        domain = Box.cube(0, 8, 2)
        h = GridHierarchy(domain, 2, 3)
        h.create_root_grids([domain])
        hooks = SyncRecorder()
        SAMRIntegrator(h, hooks).step()
        assert not any(c[0] == "sync" for c in hooks.calls)

    def test_full_order_one_step_two_levels(self):
        h = populated(2)
        hooks = SyncRecorder()
        SAMRIntegrator(h, hooks).step()
        assert hooks.calls == [
            ("global", -1),
            ("solve", 0),
            ("regrid", 0),
            ("balance", 1),
            ("solve", 1),
            ("solve", 1),
            ("sync", 0),
        ]

    def test_default_hooks_noop(self):
        """The base IntegratorHooks class accepts every call silently."""
        h = populated(2)
        SAMRIntegrator(h, IntegratorHooks()).run(2)
