"""Tests for the execution engine: executors, content-addressed cache,
stats, and the serial == parallel == cached determinism guarantee."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import ExecParams, FaultParams, SimParams
from repro.exec import (
    CODE_VERSION_SALT,
    ExecTask,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    canonical_json,
    default_cache_dir,
    get_default_executor,
    make_executor,
    set_default_executor,
    task_key,
)
from repro.harness import ExperimentConfig, run_experiment, run_sweep, sequential_config
from repro.harness.persist import run_result_to_dict

SMALL = ExperimentConfig(procs_per_group=1, steps=2)


def _hammer_cache_put(cache_dir, key, result, n):
    """Child-process body: store the same entry ``n`` times."""
    cache = ResultCache(cache_dir)
    for _ in range(n):
        cache.put(key, result)


def _hammer_metrics_flush(cache_dir, n):
    """Child-process body: fold counter deltas into metrics.json ``n``
    times."""
    cache = ResultCache(cache_dir)
    for _ in range(n):
        cache.hits += 1
        cache.flush_metrics()


def comparable(result):
    """All persisted RunResult fields; the event log is summarised by
    run_result_to_dict and dropped here (cache hits carry no events)."""
    d = run_result_to_dict(result)
    d.pop("event_counts", None)
    return d


class TestTaskKey:
    def test_stable(self):
        cfg = ExperimentConfig(procs_per_group=2, steps=3)
        assert task_key(cfg, "parallel") == task_key(
            ExperimentConfig(procs_per_group=2, steps=3), "parallel"
        )

    def test_scheme_in_key(self):
        assert task_key(SMALL, "parallel") != task_key(SMALL, "distributed")

    def test_top_level_field_changes_key(self):
        assert task_key(SMALL, "parallel") != task_key(
            replace(SMALL, steps=3), "parallel"
        )

    def test_nested_dataclass_field_changes_key(self):
        tweaked = replace(SMALL, sim_params=SimParams(bytes_per_cell=81.0))
        assert task_key(SMALL, "parallel") != task_key(tweaked, "parallel")
        faulted = replace(SMALL, fault=FaultParams(scenario="slowdown"))
        assert task_key(SMALL, "parallel") != task_key(faulted, "parallel")
        assert task_key(faulted, "parallel") != task_key(
            replace(SMALL, fault=FaultParams(scenario="slowdown", severity=8.0)),
            "parallel",
        )

    def test_salt_changes_key(self):
        assert task_key(SMALL, "parallel") != task_key(
            SMALL, "parallel", salt=CODE_VERSION_SALT + "x"
        )

    def test_canonical_json_deterministic(self):
        assert canonical_json(SMALL) == canonical_json(
            ExperimentConfig(procs_per_group=1, steps=2)
        )

    def test_unhashable_object_rejected(self):
        with pytest.raises(TypeError):
            canonical_json(object())


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key(SMALL, "distributed")
        assert cache.get(key) is None
        result = run_experiment(SMALL, "distributed")
        cache.put(key, result)
        assert key in cache
        served = cache.get(key)
        assert served.events is None
        assert comparable(served) == comparable(result)
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key(SMALL, "parallel")
        cache.put(key, run_experiment(SMALL, "parallel"))
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_wrong_version_is_a_miss(self, tmp_path):
        import json

        cache = ResultCache(tmp_path)
        key = task_key(SMALL, "parallel")
        cache.put(key, run_experiment(SMALL, "parallel"))
        path = cache._path(key)
        payload = json.loads(path.read_text())
        payload["format"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None

    def test_entry_count_bytes_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.entry_count() == 0 and cache.total_bytes() == 0
        cache.put(task_key(SMALL, "parallel"), run_experiment(SMALL, "parallel"))
        assert cache.entry_count() == 1 and cache.total_bytes() > 0
        assert cache.clear() == 1
        assert cache.entry_count() == 0

    def test_default_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        assert str(default_cache_dir()) == "/tmp/somewhere"

    def test_get_run_dict_is_the_stored_form(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key(SMALL, "distributed")
        assert cache.get_run_dict(key) is None
        result = run_experiment(SMALL, "distributed")
        cache.put(key, result)
        raw = cache.get_run_dict(key)
        # verbatim persisted form: event_counts survive, unlike the
        # reconstructed RunResult of get() (whose event log is gone)
        assert raw == run_result_to_dict(result)
        assert raw["event_counts"]
        assert cache.hits == 1

    def test_concurrent_writers_never_corrupt_entries(self, tmp_path):
        """Regression: a shared fixed temp-file name let two concurrent
        put()s interleave write/rename and publish a torn entry.  Hammer
        one key from many processes while a reader checks every observed
        state is either absent or a complete, valid entry."""
        import multiprocessing

        result = run_experiment(SMALL, "distributed")
        key = task_key(SMALL, "distributed")
        procs = [
            multiprocessing.Process(
                target=_hammer_cache_put,
                args=(str(tmp_path), key, result, 25))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        reader = ResultCache(tmp_path)
        good = 0
        try:
            while any(p.is_alive() for p in procs):
                served = reader.get_run_dict(key)
                if served is not None:
                    assert served == run_result_to_dict(result)
                    good += 1
        finally:
            for p in procs:
                p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        assert good > 0  # the reader really did observe published entries
        # the final state is valid and no temp litter is left behind
        assert reader.get_run_dict(key) == run_result_to_dict(result)
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_concurrent_metrics_flush_keeps_file_parsable(self, tmp_path):
        import multiprocessing

        procs = [
            multiprocessing.Process(target=_hammer_metrics_flush,
                                    args=(str(tmp_path), 25))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        reader = ResultCache(tmp_path)
        try:
            while any(p.is_alive() for p in procs):
                totals = reader._read_metrics_file()  # parses or raises
                assert all(v >= 0 for v in totals.values())
        finally:
            for p in procs:
                p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        # increments may race away, but the file stays valid and nonzero
        assert reader.lifetime_metrics()["exec.cache_hits"] > 0


class TestExecutors:
    def test_results_in_submission_order(self):
        ex = SerialExecutor()
        tasks = [
            ExecTask(replace(SMALL, procs_per_group=n), scheme)
            for n in (1, 2)
            for scheme in ("parallel", "distributed")
        ]
        results = ex.run_tasks(tasks)
        assert [r.scheme for r in results] == [
            "parallel DLB", "distributed DLB", "parallel DLB", "distributed DLB"
        ]
        assert results[0].system != results[2].system  # 1+1 vs 2+2

    def test_parallel_matches_serial(self):
        tasks = [ExecTask(SMALL, "parallel"), ExecTask(SMALL, "distributed")]
        serial = SerialExecutor().run_tasks(tasks)
        parallel = ParallelExecutor(jobs=2).run_tasks(tasks)
        for s, p in zip(serial, parallel):
            assert comparable(s) == comparable(p)

    def test_cache_hits_counted_and_identical(self, tmp_path):
        ex = SerialExecutor(cache=ResultCache(tmp_path))
        tasks = [ExecTask(SMALL, "parallel"), ExecTask(SMALL, "distributed")]
        cold = ex.run_tasks(tasks)
        warm = ex.run_tasks(tasks)
        assert ex.batches[0].cache_hits == 0 and ex.batches[0].executed == 2
        assert ex.batches[1].cache_hits == 2 and ex.batches[1].executed == 0
        for c, w in zip(cold, warm):
            assert comparable(c) == comparable(w)

    def test_use_cache_false_executes_but_stores(self, tmp_path):
        ex = SerialExecutor(cache=ResultCache(tmp_path))
        task = ExecTask(SMALL, "distributed", use_cache=False)
        first = ex.run_tasks([task])[0]
        second = ex.run_tasks([task])[0]
        # both executions were fresh (events present), nothing was served
        assert first.events is not None and second.events is not None
        assert all(b.cache_hits == 0 for b in ex.batches)
        # ... but the entry exists for cache-willing consumers
        assert ex.cache.get(task_key(SMALL, "distributed")) is not None

    def test_stats_merging_and_summary(self):
        ex = SerialExecutor()
        ex.run_tasks([ExecTask(SMALL, "parallel")])
        ex.run_tasks([ExecTask(SMALL, "distributed")])
        merged = ex.stats
        assert merged.ntasks == 2
        assert merged.elapsed_seconds > 0
        assert merged.run_wall_seconds > 0
        assert "2 runs" in merged.summary()

    def test_make_executor_from_params(self, tmp_path):
        assert isinstance(make_executor(), SerialExecutor)
        assert make_executor().cache is None
        ex = make_executor(ExecParams(jobs=3, use_cache=True,
                                      cache_dir=str(tmp_path)))
        assert isinstance(ex, ParallelExecutor)
        assert ex.jobs == 3
        assert ex.cache is not None and ex.cache.cache_dir == tmp_path

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ExecParams(jobs=0)
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=-1)

    def test_default_executor_roundtrip(self):
        mine = SerialExecutor()
        previous = set_default_executor(mine)
        try:
            assert get_default_executor() is mine
        finally:
            set_default_executor(previous)


class TestDeterminismEndToEnd:
    """ISSUE acceptance: serial, parallel and cache-served executions of the
    same config are bit-identical, including the communication breakdowns."""

    CFG = ExperimentConfig(procs_per_group=2, steps=2, traffic_kind="bursty",
                           traffic_seed=11)

    @pytest.fixture(scope="class")
    def three_ways(self, tmp_path_factory):
        tasks = [ExecTask(self.CFG, "parallel"), ExecTask(self.CFG, "distributed")]
        serial = SerialExecutor().run_tasks(tasks)
        parallel = ParallelExecutor(jobs=2).run_tasks(tasks)
        cache_ex = SerialExecutor(
            cache=ResultCache(tmp_path_factory.mktemp("cache"))
        )
        cache_ex.run_tasks(tasks)  # populate
        cached = cache_ex.run_tasks(tasks)  # serve
        assert cache_ex.batches[-1].cache_hits == len(tasks)
        return serial, parallel, cached

    def test_all_fields_identical(self, three_ways):
        serial, parallel, cached = three_ways
        for i in range(len(serial)):
            assert comparable(serial[i]) == comparable(parallel[i])
            assert comparable(serial[i]) == comparable(cached[i])

    def test_comm_breakdowns_identical(self, three_ways):
        serial, parallel, cached = three_ways
        for i in range(len(serial)):
            assert serial[i].comm_by_purpose == parallel[i].comm_by_purpose
            assert serial[i].comm_by_purpose == cached[i].comm_by_purpose
            assert serial[i].remote_bytes_by_kind == parallel[i].remote_bytes_by_kind
            assert serial[i].remote_bytes_by_kind == cached[i].remote_bytes_by_kind

    def test_event_counts_identical_when_executed(self, three_ways):
        serial, parallel, _ = three_ways
        for s, p in zip(serial, parallel):
            assert run_result_to_dict(s)["event_counts"] == \
                run_result_to_dict(p)["event_counts"]


class TestHarnessIntegration:
    def test_run_sweep_with_parallel_executor_matches_serial(self):
        base = ExperimentConfig(steps=2)
        serial = run_sweep(base, procs_per_group=(1, 2), with_sequential=True)
        parallel = run_sweep(base, procs_per_group=(1, 2), with_sequential=True,
                             executor=ParallelExecutor(jobs=2))
        assert serial.exec_stats is not None and parallel.exec_stats is not None
        assert parallel.exec_stats.jobs == 2
        assert "runs" in parallel.exec_summary()
        for s, p in zip(serial.pairs, parallel.pairs):
            assert comparable(s.parallel) == comparable(p.parallel)
            assert comparable(s.distributed) == comparable(p.distributed)
            assert comparable(s.sequential) == comparable(p.sequential)

    def test_sweep_sequential_shared_and_cached_once(self, tmp_path):
        ex = SerialExecutor(cache=ResultCache(tmp_path))
        base = ExperimentConfig(steps=2)
        sw = run_sweep(base, procs_per_group=(1, 2), with_sequential=True,
                       executor=ex)
        assert sw.pairs[0].sequential is sw.pairs[1].sequential
        # the sequential reference is keyed on the *normalised* config, so
        # any sweep over the same workload shares one entry
        key = task_key(sequential_config(replace(base, procs_per_group=4)),
                       "sequential")
        assert ex.cache.get(key) is not None

    def test_replicate_through_executor(self):
        from repro.harness import replicate

        rep = replicate(ExperimentConfig(steps=2, procs_per_group=1),
                        seeds=(1, 2), executor=SerialExecutor())
        assert len(rep.pairs) == 2
        assert rep.exec_stats is not None and rep.exec_stats.ntasks == 4
        assert rep.exec_summary().startswith("executor:")

    def test_fault_scenarios_keep_events_by_default(self, tmp_path):
        from repro.harness import run_fault_scenarios

        ex = SerialExecutor(cache=ResultCache(tmp_path))
        base = ExperimentConfig(steps=2, procs_per_group=1)
        first = run_fault_scenarios(base, scenarios=("none", "slowdown"),
                                    executor=ex)
        second = run_fault_scenarios(base, scenarios=("none", "slowdown"),
                                     executor=ex)
        for results in (first, second):
            for pair in results.values():
                assert pair.distributed.events is not None
        # parallel runs are cache-served on the second pass
        assert ex.batches[-1].cache_hits == 2
        assert comparable(first["slowdown"].parallel) == \
            comparable(second["slowdown"].parallel)
