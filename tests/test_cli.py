"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.app == "shockpool3d"
        assert args.scheme == "distributed"
        assert args.gamma == 2.0

    def test_sweep_configs(self):
        args = build_parser().parse_args(["sweep", "--configs", "1", "2"])
        assert args.configs == [1, 2]

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig2"])
        assert args.name == "fig2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])

    def test_bad_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run_prints_summary(self, capsys):
        rc = main(["run", "--procs", "1", "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "distributed DLB" in out
        assert "total" in out

    def test_run_parallel_scheme(self, capsys):
        rc = main(["run", "--procs", "1", "--steps", "2", "--scheme", "parallel"])
        assert rc == 0
        assert "parallel DLB" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--procs", "1", "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert "parallel DLB" in out and "distributed DLB" in out

    def test_sweep_with_efficiency(self, capsys):
        rc = main(["sweep", "--configs", "1", "--steps", "2", "--efficiency"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eff (dist)" in out
        assert "average improvement" in out

    def test_figure_fig2(self, capsys):
        rc = main(["figure", "fig2"])
        assert rc == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_run_static_scheme(self, capsys):
        rc = main(["run", "--procs", "1", "--steps", "2", "--scheme", "static"])
        assert rc == 0
        assert "static (no DLB)" in capsys.readouterr().out

    def test_run_timeline_flag(self, capsys):
        rc = main(["run", "--procs", "1", "--steps", "2", "--timeline"])
        assert rc == 0
        assert "Per-coarse-step activity" in capsys.readouterr().out

    def test_run_json_output(self, capsys, tmp_path):
        path = tmp_path / "r.json"
        rc = main(["run", "--procs", "1", "--steps", "2", "--json", str(path)])
        assert rc == 0
        from repro.harness import load_run

        assert load_run(path).total_time > 0

    def test_sweep_json_output(self, capsys, tmp_path):
        path = tmp_path / "s.json"
        rc = main(["sweep", "--configs", "1", "--steps", "2", "--json", str(path)])
        assert rc == 0
        from repro.harness import load_sweep

        assert len(load_sweep(path).pairs) == 1

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "figure", "fig2"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "Fig. 2" in proc.stdout
