"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.app == "shockpool3d"
        assert args.scheme == "distributed"
        assert args.gamma == 2.0

    def test_sweep_configs(self):
        args = build_parser().parse_args(["sweep", "--configs", "1", "2"])
        assert args.configs == [1, 2]

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig2"])
        assert args.name == "fig2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])

    def test_bad_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run_prints_summary(self, capsys):
        rc = main(["run", "--procs", "1", "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "distributed DLB" in out
        assert "total" in out

    def test_run_parallel_scheme(self, capsys):
        rc = main(["run", "--procs", "1", "--steps", "2", "--scheme", "parallel"])
        assert rc == 0
        assert "parallel DLB" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--procs", "1", "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert "parallel DLB" in out and "distributed DLB" in out

    def test_sweep_with_efficiency(self, capsys):
        rc = main(["sweep", "--configs", "1", "--steps", "2", "--efficiency"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eff (dist)" in out
        assert "average improvement" in out

    def test_figure_fig2(self, capsys):
        rc = main(["figure", "fig2"])
        assert rc == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_run_static_scheme(self, capsys):
        rc = main(["run", "--procs", "1", "--steps", "2", "--scheme", "static"])
        assert rc == 0
        assert "static (no DLB)" in capsys.readouterr().out

    def test_run_timeline_flag(self, capsys):
        rc = main(["run", "--procs", "1", "--steps", "2", "--timeline"])
        assert rc == 0
        assert "Per-coarse-step activity" in capsys.readouterr().out

    def test_run_json_output(self, capsys, tmp_path):
        path = tmp_path / "r.json"
        rc = main(["run", "--procs", "1", "--steps", "2", "--json", str(path)])
        assert rc == 0
        from repro.harness import load_run

        assert load_run(path).total_time > 0

    def test_sweep_json_output(self, capsys, tmp_path):
        path = tmp_path / "s.json"
        rc = main(["sweep", "--configs", "1", "--steps", "2", "--json", str(path)])
        assert rc == 0
        from repro.harness import load_sweep

        assert len(load_sweep(path).pairs) == 1

    def test_faults_json_output(self, capsys, tmp_path):
        path = tmp_path / "f.json"
        rc = main(["faults", "--procs", "1", "--steps", "2",
                   "--scenarios", "none", "slowdown", "--json", str(path)])
        assert rc == 0
        from repro.harness import load_fault_scenarios

        back = load_fault_scenarios(path)
        assert list(back) == ["none", "slowdown"]

    def test_record_then_replay_round_trip(self, capsys, tmp_path):
        out = tmp_path / "run.trace.jsonl.gz"
        rc = main(["record", "--procs", "1", "--steps", "2",
                   "--out", str(out)])
        assert rc == 0
        recorded = capsys.readouterr().out
        assert f"trace written to {out}" in recorded
        assert out.is_file()
        # replay builds its config from its own flags: match the recording
        rc = main(["replay", str(out), "--procs", "1", "--strict",
                   "--no-cache"])
        assert rc == 0
        replayed = capsys.readouterr().out
        # the simulated-time summary line is identical (golden equivalence)
        total = next(ln for ln in recorded.splitlines()
                     if ln.strip().startswith("total"))
        assert total in replayed

    def test_replay_synth_source(self, capsys):
        rc = main(["replay", "synth:adversarial", "--procs", "1",
                   "--steps", "2", "--no-cache"])
        assert rc == 0
        assert "synth:adversarial" in capsys.readouterr().out

    def test_replay_corrupt_trace_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.trace.jsonl.gz"
        bad.write_text("not a trace\n")
        rc = main(["replay", str(bad), "--no-cache"])
        assert rc == 2
        assert "error:" in capsys.readouterr().out

    def test_replay_unknown_synth_exits_2(self, capsys):
        rc = main(["replay", "synth:warpdrive", "--procs", "1",
                   "--steps", "2", "--no-cache"])
        assert rc == 2
        assert "registered" in capsys.readouterr().out

    def test_replay_bad_intensity_exits_2(self, capsys):
        rc = main(["replay", "synth:hotspot", "--procs", "1",
                   "--steps", "2", "--intensity", "0", "--no-cache"])
        assert rc == 2
        assert "intensity" in capsys.readouterr().out

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "figure", "fig2"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "Fig. 2" in proc.stdout


class TestExecFlags:
    def test_exec_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache
        assert not args.exec_stats
        assert not args.profile

    def test_exec_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache",
             "--exec-stats", "--profile"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache and args.exec_stats and args.profile

    def test_exec_summary_printed(self, capsys):
        rc = main(["compare", "--procs", "1", "--steps", "2"])
        assert rc == 0
        assert "executor:" in capsys.readouterr().out

    def test_sweep_second_invocation_hits_cache(self, capsys, tmp_path):
        argv = ["sweep", "--configs", "1", "--steps", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 cache hits" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 cache hits, 0 executed" in warm
        # the cached rerun prints the identical results table
        assert cold.split("executor:")[0] == warm.split("executor:")[0]

    def test_no_cache_disables_cache(self, capsys, tmp_path):
        argv = ["sweep", "--configs", "1", "--steps", "2", "--no-cache",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 cache hits" in out
        assert not any(tmp_path.iterdir())

    def test_exec_stats_table(self, capsys, tmp_path):
        rc = main(["sweep", "--configs", "1", "--steps", "2",
                   "--cache-dir", str(tmp_path), "--exec-stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution breakdown" in out
        assert "[distributed]" in out

    def test_parallel_jobs_match_serial(self, capsys, tmp_path):
        base = ["sweep", "--configs", "1", "2", "--steps", "2", "--no-cache"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial.split("executor:")[0] == parallel.split("executor:")[0]
        assert "jobs=2" in parallel

    def test_timeline_bypasses_cache_read(self, capsys, tmp_path):
        argv = ["run", "--procs", "1", "--steps", "2", "--timeline",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert main(argv) == 0  # second run must re-execute, not crash on a hit
        out = capsys.readouterr().out
        assert "Per-coarse-step activity" in out
        assert "0 cache hits" in out

    def test_profile_prints_hotspots(self, capsys):
        rc = main(["run", "--procs", "1", "--steps", "2", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile (top 20 by cumulative time)" in out
        assert "cumtime" in out

    def test_serve_family_parses(self):
        args = build_parser().parse_args(
            ["serve", "--workers", "4", "--queue-size", "8"])
        assert args.workers == 4 and args.queue_size == 8
        args = build_parser().parse_args(
            ["submit", "--source", "synth:hotspot", "--sweep", "1", "2",
             "--priority", "5", "--no-wait"])
        assert args.sweep == [1, 2] and args.priority == 5 and args.no_wait
        assert args.steps is None  # resolved from the source at run time
        args = build_parser().parse_args(["cancel", "j0001"])
        assert args.job_id == "j0001"
        with pytest.raises(SystemExit):  # sweep procs must be >= 1
            build_parser().parse_args(["submit", "--sweep", "0"])

    def test_submit_without_daemon_exits_2(self, capsys, tmp_path):
        sock = str(tmp_path / "nope.sock")
        for argv in (
            ["submit", "--steps", "2", "--socket", sock],
            ["jobs", "--socket", sock],
            ["cancel", "j0001", "--socket", sock],
        ):
            assert main(argv) == 2
            out = capsys.readouterr().out
            assert "cannot reach the serve daemon" in out
            assert "repro serve" in out

    def test_submit_bad_trace_source_exits_2(self, capsys, tmp_path):
        rc = main(["submit", "--source", str(tmp_path / "missing.gz"),
                   "--socket", str(tmp_path / "nope.sock")])
        assert rc == 2
        assert "error" in capsys.readouterr().out

    def test_cache_subcommand_info_and_clear(self, capsys, tmp_path):
        sweep_argv = ["sweep", "--configs", "1", "--steps", "2",
                      "--cache-dir", str(tmp_path)]
        assert main(sweep_argv) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:   2" in out
        assert main(["cache", "--cache-dir", str(tmp_path), "--clear"]) == 0
        assert "cleared 2" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "entries:   0" in capsys.readouterr().out


class TestTopologyCommand:
    def _spec_path(self, tmp_path):
        import json

        from repro.distsys import GroupSpec, SystemSpec, ring

        t = ring(4)
        spec = SystemSpec(
            groups=tuple(GroupSpec(name=n, nprocs=1) for n in t.groups),
            topology=t)
        path = tmp_path / "ring.json"
        path.write_text(json.dumps(spec.to_dict()))
        return path

    def test_default_spec_described(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "NetworkTopology" in out
        assert "validated: spec round-trips" in out

    def test_explicit_spec_routes_listed(self, capsys, tmp_path):
        assert main(["topology", "--system", str(self._spec_path(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "route 0 -> 2:" in out  # two-hop route around the ring
        assert "6 group pair(s)" in out

    def test_dot_output(self, capsys, tmp_path):
        assert main(["topology", "--system", str(self._spec_path(tmp_path)),
                     "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("graph topology {")
        assert out.rstrip().endswith("}")

    def test_bad_spec_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"groups": [], "colour": "red"}')
        assert main(["topology", "--system", str(bad)]) == 2
        assert "error" in capsys.readouterr().out
