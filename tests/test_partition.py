"""Unit and property tests for mapping, proportional shares and splitting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.distsys import ConstantTraffic, wan_system
from repro.distsys.system import build_system
from repro.distsys.network import mren_wan
from repro.partition import (
    GridAssignment,
    carve_workload,
    group_targets,
    processor_targets,
    proportional_shares,
    split_level0_grid,
)
from repro.runtime import root_blocks


def make_setup(blocks=(4, 1, 1), n=16):
    domain = Box.cube(0, n, 3)
    h = GridHierarchy(domain, 2, 3)
    h.create_root_grids(root_blocks(domain, blocks))
    system = wan_system(2, ConstantTraffic(0.0))
    a = GridAssignment(h, system)
    return h, system, a


class TestProportionalShares:
    def test_even(self):
        assert proportional_shares(100.0, [1, 1, 1, 1]) == [25.0] * 4

    def test_weighted(self):
        assert proportional_shares(100.0, [1, 3]) == [25.0, 75.0]

    def test_sums_to_total(self):
        shares = proportional_shares(17.3, [1.1, 2.7, 0.4])
        assert sum(shares) == pytest.approx(17.3)

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError):
            proportional_shares(-1, [1])
        with pytest.raises(ValueError):
            proportional_shares(1, [])
        with pytest.raises(ValueError):
            proportional_shares(1, [0.0])

    @given(
        total=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        caps=st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=8),
    )
    def test_property_sum_and_proportionality(self, total, caps):
        shares = proportional_shares(total, caps)
        assert sum(shares) == pytest.approx(total, rel=1e-9, abs=1e-9)
        for s, c in zip(shares, caps):
            assert s == pytest.approx(total * c / sum(caps), rel=1e-9, abs=1e-9)

    def test_group_targets_match_paper_formula(self):
        """W * nA*pA/(nA*pA + nB*pB) from Section 4.4."""
        s = build_system([2, 4], inter_link=mren_wan(), group_weights=[3.0, 1.0])
        targets = group_targets(s, 100.0)
        assert targets[0] == pytest.approx(100.0 * 6 / 10)
        assert targets[1] == pytest.approx(100.0 * 4 / 10)

    def test_processor_targets_weighted(self):
        s = build_system([1, 1], inter_link=mren_wan(), group_weights=[1.0, 3.0])
        targets = processor_targets(s, 80.0)
        assert targets[0] == pytest.approx(20.0)
        assert targets[1] == pytest.approx(60.0)


class TestGridAssignment:
    def test_assign_and_lookup(self):
        h, s, a = make_setup()
        gid = h.level_grids(0)[0].gid
        a.assign(gid, 2)
        assert a.pid_of(gid) == 2
        assert a.group_of(gid) == 1
        assert a.is_assigned(gid)

    def test_unknown_grid_raises(self):
        h, s, a = make_setup()
        with pytest.raises(KeyError):
            a.assign(999, 0)

    def test_unknown_pid_raises(self):
        h, s, a = make_setup()
        with pytest.raises(ValueError):
            a.assign(h.level_grids(0)[0].gid, 99)

    def test_unassigned_lookup_raises(self):
        h, s, a = make_setup()
        with pytest.raises(KeyError):
            a.pid_of(h.level_grids(0)[0].gid)

    def test_loads(self):
        h, s, a = make_setup(blocks=(4, 1, 1))
        grids = h.level_grids(0)
        for i, g in enumerate(grids):
            a.assign(g.gid, i % 2)
        per_grid = grids[0].workload
        assert a.proc_load(0) == pytest.approx(2 * per_grid)
        assert a.level_loads(0)[1] == pytest.approx(2 * per_grid)
        assert a.level_loads(0)[3] == 0.0
        assert a.group_load(0) == pytest.approx(4 * per_grid)
        assert a.group_load(1) == 0.0

    def test_group_level_loads(self):
        h, s, a = make_setup(blocks=(4, 1, 1))
        for g in h.level_grids(0):
            a.assign(g.gid, 3)  # all on group 1
        gl = a.group_level_loads(0)
        assert gl[0] == 0.0
        assert gl[1] == pytest.approx(16**3)

    def test_prune_drops_stale(self):
        h, s, a = make_setup()
        gid = h.level_grids(0)[0].gid
        for g in h.level_grids(0):
            a.assign(g.gid, 0)
        h.remove_grid(gid)
        a.prune()
        assert not a.is_assigned(gid)

    def test_validate_catches_unassigned(self):
        h, s, a = make_setup()
        with pytest.raises(AssertionError):
            a.validate()

    def test_copy_is_independent(self):
        h, s, a = make_setup()
        gid = h.level_grids(0)[0].gid
        a.assign(gid, 0)
        b = a.copy()
        b.assign(gid, 1)
        assert a.pid_of(gid) == 0
        assert b.pid_of(gid) == 1

    def test_grids_on_filters_by_level(self):
        h, s, a = make_setup()
        root = h.level_grids(0)[0]
        child = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), root.gid)
        for g in h.all_grids():
            a.assign(g.gid, 0)
        assert child in a.grids_on(0, level=1)
        assert child not in a.grids_on(0, level=0)


class TestSplitter:
    def test_split_preserves_cells_and_owner(self):
        h, s, a = make_setup()
        g = h.level_grids(0)[0]
        a.assign(g.gid, 1)
        before = g.ncells
        low, high = split_level0_grid(h, a, g.gid, axis=1, at=8)
        assert low.ncells + high.ncells == before
        assert a.pid_of(low.gid) == 1
        assert a.pid_of(high.gid) == 1
        assert not h.has_grid(g.gid)

    def test_split_removes_descendants(self):
        h, s, a = make_setup()
        g = h.level_grids(0)[0]
        child = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), g.gid)
        a.assign(g.gid, 0)
        a.assign(child.gid, 0)
        split_level0_grid(h, a, g.gid, axis=1, at=8)
        assert not h.has_grid(child.gid)
        assert not a.is_assigned(child.gid)

    def test_split_fine_level_raises(self):
        h, s, a = make_setup()
        g = h.level_grids(0)[0]
        child = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), g.gid)
        a.assign(child.gid, 0)
        with pytest.raises(ValueError):
            split_level0_grid(h, a, child.gid, axis=0, at=2)

    def test_carve_hits_requested_workload(self):
        h, s, a = make_setup(blocks=(1, 1, 1), n=16)
        g = h.level_grids(0)[0]
        a.assign(g.gid, 0)
        want = g.workload * 0.25
        low, high = carve_workload(h, a, g.gid, want)
        assert low.workload == pytest.approx(want, rel=0.2)
        assert low.workload + high.workload == pytest.approx(16**3)

    def test_carve_bounds_validated(self):
        h, s, a = make_setup(blocks=(1, 1, 1))
        g = h.level_grids(0)[0]
        a.assign(g.gid, 0)
        with pytest.raises(ValueError):
            carve_workload(h, a, g.gid, 0.0)
        with pytest.raises(ValueError):
            carve_workload(h, a, g.gid, g.workload)

    @given(frac=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=25, deadline=None)
    def test_carve_property_partition(self, frac):
        h, s, a = make_setup(blocks=(1, 1, 1), n=16)
        g = h.level_grids(0)[0]
        a.assign(g.gid, 0)
        total = g.workload
        low, high = carve_workload(h, a, g.gid, frac * total)
        assert low.workload + high.workload == pytest.approx(total)
        assert not low.box.intersects(high.box)
        assert low.box.bounding_union(high.box) == Box.cube(0, 16, 3)
