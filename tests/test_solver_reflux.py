"""Tests for unsplit advection and flux-corrected (refluxed) conservation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.grid import Grid
from repro.amr.solver import (
    AdvectionDriver,
    GridData,
    advect_donor_cell_unsplit,
    cfl_number_unsplit,
)
from repro.amr.solver.ops import _clamp_remaining


def make_data(values):
    arr = np.asarray(values, dtype=float)
    g = Grid(gid=0, level=0, box=Box((0,) * arr.ndim, arr.shape))
    gd = GridData(g, nghost=1)
    gd.interior = arr
    gd.invalidate_ghosts()
    _clamp_remaining(gd)
    return gd


class TestUnsplitAdvect:
    def test_uniform_unchanged(self):
        gd = make_data(np.full((6, 6), 2.0))
        advect_donor_cell_unsplit(gd, (0.4, -0.3), dt=0.1, dx=0.1)
        assert np.allclose(gd.interior, 2.0)

    def test_matches_split_in_1d(self):
        """In one dimension split and unsplit donor-cell are identical."""
        from repro.amr.solver import advect_donor_cell

        u = np.zeros(16)
        u[5:9] = 1.0
        a, b = make_data(u), make_data(u)
        advect_donor_cell(a, (0.7,), dt=0.1, dx=0.1)
        advect_donor_cell_unsplit(b, (0.7,), dt=0.1, dx=0.1)
        assert np.allclose(a.interior, b.interior)

    def test_flux_shapes(self):
        gd = make_data(np.zeros((4, 6)))
        fluxes = advect_donor_cell_unsplit(gd, (1.0, 0.0), dt=0.05, dx=0.1)
        assert fluxes[0].shape == (5, 6)
        assert fluxes[1].shape == (4, 7)

    def test_flux_values_upwind(self):
        u = np.arange(4.0)
        gd = make_data(u)
        fluxes = advect_donor_cell_unsplit(gd, (2.0,), dt=0.01, dx=0.1)
        # v > 0: face k carries v * u[k-1]; face 0 reads the clamped ghost
        assert fluxes[0][0] == pytest.approx(2.0 * 0.0)
        assert fluxes[0][2] == pytest.approx(2.0 * 1.0)
        assert fluxes[0][4] == pytest.approx(2.0 * 3.0)

    def test_update_is_flux_divergence(self):
        rng = np.random.default_rng(1)
        u = rng.random(12)
        gd = make_data(u)
        dt, dx = 0.04, 0.1
        fluxes = advect_donor_cell_unsplit(gd, (0.9,), dt=dt, dx=dx)
        expected = u - (dt / dx) * (fluxes[0][1:] - fluxes[0][:-1])
        assert np.allclose(gd.interior, expected)

    def test_unsplit_cfl_is_sum(self):
        assert cfl_number_unsplit((0.5, 0.5), dt=0.1, dx=0.1) == pytest.approx(1.0)
        gd = make_data(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            advect_donor_cell_unsplit(gd, (0.6, 0.6), dt=0.1, dx=0.1)


def gaussian1d(x):
    return np.exp(-((x - 0.5) ** 2) / (2 * 0.04**2))


def gaussian2d(x, y):
    return np.exp(-((x - 0.35) ** 2 + (y - 0.35) ** 2) / (2 * 0.05**2))


class TestRefluxedConservation:
    """The headline property: composite mass exactly conserved (up to the
    outflow of the solution's own tails through the domain boundary)."""

    def drift_per_step(self, drv, nsteps=5):
        masses = [drv.total_mass()]
        for _ in range(nsteps):
            drv.integrator.step()
            masses.append(drv.total_mass())
        return [abs(b - a) for a, b in zip(masses, masses[1:])]

    def test_1d_two_levels_machine_exact(self):
        drv = AdvectionDriver(domain_cells=32, velocity=(0.5,),
                              initial=gaussian1d, ndim=1, max_levels=2,
                              threshold=0.05)
        assert max(self.drift_per_step(drv)) < 1e-13

    def test_1d_three_levels_machine_exact(self):
        drv = AdvectionDriver(domain_cells=32, velocity=(0.5,),
                              initial=gaussian1d, ndim=1, max_levels=3,
                              threshold=0.05)
        assert max(self.drift_per_step(drv)) < 1e-13

    def test_2d_three_levels_outflow_only(self):
        drv = AdvectionDriver(domain_cells=32, velocity=(0.5, 0.25),
                              initial=gaussian2d, ndim=2, max_levels=3,
                              threshold=0.05)
        # the gaussian tail at the boundary is ~1e-8; outflow per step is
        # orders below 1e-8 and far below any discretization artifact
        assert max(self.drift_per_step(drv)) < 1e-8

    def test_negative_velocity_conserves_too(self):
        drv = AdvectionDriver(domain_cells=32, velocity=(-0.4,),
                              initial=gaussian1d, ndim=1, max_levels=2,
                              threshold=0.05)
        assert max(self.drift_per_step(drv)) < 1e-13

    def test_initial_composite_state_consistent(self):
        """After initialization, coarse data under fine grids equals the
        restriction of the fine data."""
        from repro.amr.solver.ops import restrict_conservative

        drv = AdvectionDriver(domain_cells=32, velocity=(0.5,),
                              initial=gaussian1d, ndim=1, max_levels=2,
                              threshold=0.05)
        r = drv.hierarchy.refinement_ratio
        for child in drv.hierarchy.level_grids(1):
            parent = drv.data[child.parent_gid]
            covered = parent.view(child.box.coarsen(r))
            expected = restrict_conservative(drv.data[child.gid].interior, r)
            assert np.allclose(covered, expected)

    def test_registers_cleared_after_sync(self):
        drv = AdvectionDriver(domain_cells=32, velocity=(0.5,),
                              initial=gaussian1d, ndim=1, max_levels=3,
                              threshold=0.05)
        drv.integrator.step()
        # all registers consumed by the synchronizations of the step
        assert all(not regs for regs in drv._registers.values())
