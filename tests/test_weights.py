"""Unit tests for relative performance weights."""

from __future__ import annotations

import pytest

from repro.core.weights import (
    capacity_normalized_loads,
    measure_weights,
    relative_weights,
)
from repro.distsys.network import mren_wan
from repro.distsys.system import build_system, parallel_system


class TestRelativeWeights:
    def test_homogeneous_all_one(self):
        assert relative_weights([5.0, 5.0, 5.0]) == [1.0, 1.0, 1.0]

    def test_mean_is_one(self):
        w = relative_weights([1.0, 2.0, 3.0])
        assert sum(w) / len(w) == pytest.approx(1.0)

    def test_ratios_preserved(self):
        w = relative_weights([100.0, 300.0])
        assert w[1] / w[0] == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_weights([])
        with pytest.raises(ValueError):
            relative_weights([1.0, 0.0])


class TestMeasureWeights:
    def test_homogeneous_system(self):
        s = parallel_system(4)
        w = measure_weights(s)
        assert w == {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}

    def test_heterogeneous_system(self):
        s = build_system([1, 1], inter_link=mren_wan(), group_weights=[1.0, 3.0])
        w = measure_weights(s)
        assert w[1] / w[0] == pytest.approx(3.0)
        assert sum(w.values()) / 2 == pytest.approx(1.0)


class TestCapacityNormalizedLoads:
    def test_weighted_balance_detected(self):
        loads = {0: 10.0, 1: 30.0}
        weights = {0: 1.0, 1: 3.0}
        norm = capacity_normalized_loads(loads, weights)
        assert norm[0] == pytest.approx(norm[1])

    def test_missing_weight_raises(self):
        with pytest.raises(ValueError):
            capacity_normalized_loads({0: 1.0}, {})
