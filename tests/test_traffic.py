"""Unit tests for background-traffic models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distsys.traffic import (
    MAX_OCCUPANCY,
    BurstyTraffic,
    ConstantTraffic,
    DiurnalTraffic,
    NoTraffic,
    TraceTraffic,
)

times = st.floats(min_value=0.0, max_value=1.0e5, allow_nan=False)


class TestNoTraffic:
    @given(times)
    def test_always_zero(self, t):
        assert NoTraffic().occupancy(t) == 0.0


class TestConstantTraffic:
    @given(times)
    def test_constant(self, t):
        assert ConstantTraffic(0.4).occupancy(t) == 0.4

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ConstantTraffic(-0.1)
        with pytest.raises(ValueError):
            ConstantTraffic(0.99)


class TestDiurnalTraffic:
    def test_periodicity(self):
        m = DiurnalTraffic(mean=0.4, amplitude=0.2, period=100.0)
        assert m.occupancy(13.0) == pytest.approx(m.occupancy(113.0))

    @given(times)
    def test_clamped(self, t):
        m = DiurnalTraffic(mean=0.5, amplitude=0.9, period=60.0)
        assert 0.0 <= m.occupancy(t) <= MAX_OCCUPANCY

    def test_mean_at_phase_zero(self):
        m = DiurnalTraffic(mean=0.35, amplitude=0.25, period=600.0)
        assert m.occupancy(0.0) == pytest.approx(0.35)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            DiurnalTraffic(period=0)
        with pytest.raises(ValueError):
            DiurnalTraffic(amplitude=-1)


class TestBurstyTraffic:
    def test_deterministic(self):
        a = BurstyTraffic(seed=4)
        b = BurstyTraffic(seed=4)
        for t in np.linspace(0, 500, 37):
            assert a.occupancy(t) == b.occupancy(t)

    def test_values_are_base_or_burst(self):
        m = BurstyTraffic(seed=1, base=0.1, burst=0.7)
        vals = {m.occupancy(t) for t in np.arange(0, 2000, 20.0)}
        assert vals <= {0.1, 0.7}
        assert len(vals) == 2  # both states occur over a long window

    def test_constant_within_bucket(self):
        m = BurstyTraffic(seed=2, bucket_seconds=50.0)
        assert m.occupancy(10.0) == m.occupancy(49.9)

    def test_burst_probability_respected(self):
        m = BurstyTraffic(seed=3, burst_probability=0.25, bucket_seconds=1.0)
        samples = [m.occupancy(t) for t in range(5000)]
        frac = sum(1 for s in samples if s == m.burst) / len(samples)
        assert 0.2 < frac < 0.3

    def test_extreme_probabilities(self):
        always = BurstyTraffic(seed=0, burst_probability=1.0)
        never = BurstyTraffic(seed=0, burst_probability=0.0)
        assert always.occupancy(5.0) == always.burst
        assert never.occupancy(5.0) == never.base

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            BurstyTraffic(bucket_seconds=0)
        with pytest.raises(ValueError):
            BurstyTraffic(burst_probability=1.5)
        with pytest.raises(ValueError):
            BurstyTraffic(burst=0.99)


class TestTraceTraffic:
    def test_step_function(self):
        m = TraceTraffic([0.0, 10.0, 20.0], [0.1, 0.5, 0.2])
        assert m.occupancy(5.0) == 0.1
        assert m.occupancy(10.0) == 0.5
        assert m.occupancy(15.0) == 0.5
        assert m.occupancy(1000.0) == 0.2

    def test_must_cover_t0(self):
        with pytest.raises(ValueError):
            TraceTraffic([5.0], [0.2])

    def test_times_must_increase(self):
        with pytest.raises(ValueError):
            TraceTraffic([0.0, 0.0], [0.1, 0.2])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            TraceTraffic([0.0, 1.0], [0.1])

    def test_occupancy_bounds_validated(self):
        with pytest.raises(ValueError):
            TraceTraffic([0.0], [0.99])
