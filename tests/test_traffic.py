"""Unit tests for background-traffic models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distsys.traffic import (
    MAX_OCCUPANCY,
    BurstyTraffic,
    ComposedTraffic,
    ConstantTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    NoTraffic,
    OverlaidTraffic,
    TraceTraffic,
)

times = st.floats(min_value=0.0, max_value=1.0e5, allow_nan=False)


class TestNoTraffic:
    @given(times)
    def test_always_zero(self, t):
        assert NoTraffic().occupancy(t) == 0.0


class TestConstantTraffic:
    @given(times)
    def test_constant(self, t):
        assert ConstantTraffic(0.4).occupancy(t) == 0.4

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ConstantTraffic(-0.1)
        with pytest.raises(ValueError):
            ConstantTraffic(0.99)


class TestDiurnalTraffic:
    def test_periodicity(self):
        m = DiurnalTraffic(mean=0.4, amplitude=0.2, period=100.0)
        assert m.occupancy(13.0) == pytest.approx(m.occupancy(113.0))

    @given(times)
    def test_clamped(self, t):
        m = DiurnalTraffic(mean=0.5, amplitude=0.9, period=60.0)
        assert 0.0 <= m.occupancy(t) <= MAX_OCCUPANCY

    def test_mean_at_phase_zero(self):
        m = DiurnalTraffic(mean=0.35, amplitude=0.25, period=600.0)
        assert m.occupancy(0.0) == pytest.approx(0.35)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            DiurnalTraffic(period=0)
        with pytest.raises(ValueError):
            DiurnalTraffic(amplitude=-1)


class TestBurstyTraffic:
    def test_deterministic(self):
        a = BurstyTraffic(seed=4)
        b = BurstyTraffic(seed=4)
        for t in np.linspace(0, 500, 37):
            assert a.occupancy(t) == b.occupancy(t)

    def test_values_are_base_or_burst(self):
        m = BurstyTraffic(seed=1, base=0.1, burst=0.7)
        vals = {m.occupancy(t) for t in np.arange(0, 2000, 20.0)}
        assert vals <= {0.1, 0.7}
        assert len(vals) == 2  # both states occur over a long window

    def test_constant_within_bucket(self):
        m = BurstyTraffic(seed=2, bucket_seconds=50.0)
        assert m.occupancy(10.0) == m.occupancy(49.9)

    def test_burst_probability_respected(self):
        m = BurstyTraffic(seed=3, burst_probability=0.25, bucket_seconds=1.0)
        samples = [m.occupancy(t) for t in range(5000)]
        frac = sum(1 for s in samples if s == m.burst) / len(samples)
        assert 0.2 < frac < 0.3

    def test_extreme_probabilities(self):
        always = BurstyTraffic(seed=0, burst_probability=1.0)
        never = BurstyTraffic(seed=0, burst_probability=0.0)
        assert always.occupancy(5.0) == always.burst
        assert never.occupancy(5.0) == never.base

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            BurstyTraffic(bucket_seconds=0)
        with pytest.raises(ValueError):
            BurstyTraffic(burst_probability=1.5)
        with pytest.raises(ValueError):
            BurstyTraffic(burst=0.99)


class TestFlashCrowdTraffic:
    def test_deterministic(self):
        a = FlashCrowdTraffic(seed=11)
        b = FlashCrowdTraffic(seed=11)
        for t in np.linspace(0, 1000, 73):
            assert a.occupancy(t) == b.occupancy(t)

    @given(times)
    def test_clamped(self, t):
        m = FlashCrowdTraffic(seed=2, base=0.3, peak=0.9,
                              crowd_probability=1.0)
        assert 0.0 <= m.occupancy(t) <= MAX_OCCUPANCY

    def test_no_pre_history_window(self):
        m = FlashCrowdTraffic(seed=0)
        assert m.crowd_in_window(-1) is None

    def test_onset_in_first_half_of_window(self):
        m = FlashCrowdTraffic(seed=5, crowd_probability=1.0,
                              window_seconds=100.0)
        for w in range(20):
            onset, peak = m.crowd_in_window(w)
            assert w * 100.0 <= onset <= (w + 0.5) * 100.0
            assert peak == m.peak

    def test_linear_onset_then_exponential_decay(self):
        m = FlashCrowdTraffic(seed=3, base=0.1, peak=0.5,
                              crowd_probability=1.0, window_seconds=1000.0,
                              onset_seconds=4.0, decay_seconds=10.0)
        onset, peak = m.crowd_in_window(0)
        # before the crowd: base only
        assert m.occupancy(max(onset - 1.0, 0.0)) == pytest.approx(0.1)
        # halfway through the onset ramp
        assert m.occupancy(onset + 2.0) == pytest.approx(0.1 + 0.25)
        # at the peak
        assert m.occupancy(onset + 4.0) == pytest.approx(0.6)
        # one decay constant later: peak * e^-1 on top of base
        assert m.occupancy(onset + 14.0) == pytest.approx(
            0.1 + 0.5 * np.exp(-1.0))

    def test_extreme_probabilities(self):
        never = FlashCrowdTraffic(seed=0, base=0.2, crowd_probability=0.0)
        for t in np.linspace(0, 500, 23):
            assert never.occupancy(t) == 0.2
        always = FlashCrowdTraffic(seed=0, crowd_probability=1.0)
        assert all(always.crowd_in_window(w) is not None for w in range(10))

    def test_crowd_probability_respected(self):
        m = FlashCrowdTraffic(seed=9, crowd_probability=0.4)
        frac = sum(m.crowd_in_window(w) is not None
                   for w in range(4000)) / 4000
        assert 0.35 < frac < 0.45

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            FlashCrowdTraffic(window_seconds=0)
        with pytest.raises(ValueError):
            FlashCrowdTraffic(onset_seconds=0)
        with pytest.raises(ValueError):
            FlashCrowdTraffic(decay_seconds=-1)
        with pytest.raises(ValueError):
            FlashCrowdTraffic(crowd_probability=1.2)
        with pytest.raises(ValueError):
            FlashCrowdTraffic(base=0.99)
        with pytest.raises(ValueError):
            FlashCrowdTraffic(peak=-0.1)


class TestComposedTraffic:
    """The composition-clamp audit: one clamp, after the sum."""

    PARTS = (
        DiurnalTraffic(mean=0.3, amplitude=0.2, period=240.0),
        BurstyTraffic(seed=7, base=0.0, burst=0.3, burst_probability=0.25,
                      bucket_seconds=10.0),
        FlashCrowdTraffic(seed=8, base=0.0, peak=0.6, crowd_probability=0.7,
                          window_seconds=60.0),
    )

    def test_plain_sum_below_saturation(self):
        m = ComposedTraffic((ConstantTraffic(0.2), ConstantTraffic(0.3)))
        assert m.occupancy(5.0) == pytest.approx(0.5)

    @given(times)
    def test_composite_never_exceeds_max(self, t):
        m = ComposedTraffic(self.PARTS)
        assert 0.0 <= m.occupancy(t) <= MAX_OCCUPANCY

    @given(times)
    def test_equivalent_to_nested_overlays(self, t):
        """For non-negative sources, nesting pairwise OverlaidTraffic
        clamps is numerically identical to the single post-sum clamp:
        ``min(C, min(C, a+b) + c) == min(C, a+b+c)``."""
        composed = ComposedTraffic(self.PARTS)
        nested = OverlaidTraffic(
            base=OverlaidTraffic(base=self.PARTS[0], extra=self.PARTS[1]),
            extra=self.PARTS[2])
        assert composed.occupancy(t) == pytest.approx(nested.occupancy(t))

    def test_saturating_stack_clamps_to_max_exactly(self):
        # three 0.5 sources sum to 1.5 -> clamped to MAX_OCCUPANCY, so the
        # effective-bandwidth floor (1 - MAX_OCCUPANCY) survives any stack
        m = ComposedTraffic(tuple(ConstantTraffic(0.5) for _ in range(3)))
        assert m.occupancy(0.0) == MAX_OCCUPANCY
        assert 1.0 - m.occupancy(0.0) == pytest.approx(1.0 - MAX_OCCUPANCY)

    def test_empty_composition_is_silence(self):
        assert ComposedTraffic(()).occupancy(3.0) == 0.0


class TestTraceTraffic:
    def test_step_function(self):
        m = TraceTraffic([0.0, 10.0, 20.0], [0.1, 0.5, 0.2])
        assert m.occupancy(5.0) == 0.1
        assert m.occupancy(10.0) == 0.5
        assert m.occupancy(15.0) == 0.5
        assert m.occupancy(1000.0) == 0.2

    def test_must_cover_t0(self):
        with pytest.raises(ValueError):
            TraceTraffic([5.0], [0.2])

    def test_times_must_increase(self):
        with pytest.raises(ValueError):
            TraceTraffic([0.0, 0.0], [0.1, 0.2])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            TraceTraffic([0.0, 1.0], [0.1])

    def test_occupancy_bounds_validated(self):
        with pytest.raises(ValueError):
            TraceTraffic([0.0], [0.99])
