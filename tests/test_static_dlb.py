"""Unit/integration tests for the StaticDLB reference scheme."""

from __future__ import annotations


from repro.amr.applications import ShockPool3D
from repro.core import DistributedDLB, StaticDLB
from repro.distsys import ConstantTraffic, wan_system
from repro.distsys.events import LocalBalanceEvent, RedistributionEvent
from repro.runtime import SAMRRunner


def run_static(steps=3):
    app = ShockPool3D(domain_cells=16, max_levels=3)
    system = wan_system(2, ConstantTraffic(0.3), base_speed=2e4)
    return SAMRRunner(app, system, StaticDLB()).run(steps)


class TestStaticDLB:
    def test_runs_to_completion(self):
        r = run_static()
        assert r.total_time > 0
        assert r.scheme == "static (no DLB)"

    def test_no_balancing_events(self):
        r = run_static()
        # zero-move LocalBalanceEvents are logged by execute_moves only when
        # a scheme calls it; StaticDLB never does
        assert r.events.of_type(LocalBalanceEvent) == []
        assert r.events.of_type(RedistributionEvent) == []
        assert r.balance_overhead == 0.0
        assert r.probe_time == 0.0

    def test_children_inherit_parent_processor(self):
        app = ShockPool3D(domain_cells=16, max_levels=3)
        system = wan_system(2, ConstantTraffic(0.3), base_speed=2e4)
        runner = SAMRRunner(app, system, StaticDLB())
        runner.integrator.step()
        for g in runner.hierarchy.all_grids():
            if g.level > 0:
                assert runner.assignment.pid_of(g.gid) == runner.assignment.pid_of(
                    g.parent_gid
                )

    def test_no_remote_ghost_from_parent_child(self):
        """Subtrees stay on one processor, so all parent-child traffic is
        processor-local (free)."""
        r = run_static()
        # any remote traffic is level-0 sibling exchange only
        assert r.remote_comm_busy < r.comm_time + 1e-9

    def test_dynamic_schemes_beat_static_on_moving_workload(self):
        """The whole point of DLB: adaptation-induced imbalance accumulates
        without it."""
        static = run_static(steps=4)
        app = ShockPool3D(domain_cells=16, max_levels=3)
        system = wan_system(2, ConstantTraffic(0.3), base_speed=2e4)
        dist = SAMRRunner(app, system, DistributedDLB()).run(4)
        assert dist.total_time < static.total_time
