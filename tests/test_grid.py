"""Unit tests for Grid and GridIdAllocator."""

from __future__ import annotations

import pytest

from repro.amr.box import Box
from repro.amr.grid import Grid, GridIdAllocator


class TestGridIdAllocator:
    def test_monotonic(self):
        alloc = GridIdAllocator()
        assert [alloc.allocate() for _ in range(3)] == [0, 1, 2]

    def test_start_offset(self):
        alloc = GridIdAllocator(start=10)
        assert alloc.allocate() == 10

    def test_peek_does_not_consume(self):
        alloc = GridIdAllocator()
        assert alloc.peek == 0
        assert alloc.peek == 0
        assert alloc.allocate() == 0


class TestGrid:
    def test_basic(self):
        g = Grid(gid=1, level=0, box=Box.cube(0, 4, 3))
        assert g.ncells == 64
        assert g.workload == 64.0

    def test_workload_scales_with_work_per_cell(self):
        g = Grid(gid=1, level=0, box=Box.cube(0, 4, 3), work_per_cell=2.5)
        assert g.workload == 160.0

    def test_level0_with_parent_raises(self):
        with pytest.raises(ValueError):
            Grid(gid=1, level=0, box=Box.cube(0, 2, 2), parent_gid=0)

    def test_fine_without_parent_raises(self):
        with pytest.raises(ValueError):
            Grid(gid=1, level=1, box=Box.cube(0, 2, 2))

    def test_negative_level_raises(self):
        with pytest.raises(ValueError):
            Grid(gid=1, level=-1, box=Box.cube(0, 2, 2))

    def test_empty_box_raises(self):
        with pytest.raises(ValueError):
            Grid(gid=1, level=0, box=Box((0, 0), (0, 4)))

    def test_negative_work_raises(self):
        with pytest.raises(ValueError):
            Grid(gid=1, level=0, box=Box.cube(0, 2, 2), work_per_cell=-1.0)

    def test_children_management(self):
        g = Grid(gid=1, level=0, box=Box.cube(0, 4, 2))
        g._add_child(5)
        g._add_child(7)
        assert g.children == (5, 7)
        g._remove_child(5)
        assert g.children == (7,)

    def test_duplicate_child_raises(self):
        g = Grid(gid=1, level=0, box=Box.cube(0, 4, 2))
        g._add_child(5)
        with pytest.raises(ValueError):
            g._add_child(5)

    def test_boundary_cells_is_surface(self):
        g = Grid(gid=1, level=0, box=Box.cube(0, 4, 3))
        assert g.boundary_cells() == g.box.surface_cells()

    def test_migration_cells_is_volume(self):
        g = Grid(gid=1, level=0, box=Box.cube(0, 4, 3))
        assert g.migration_cells() == 64
