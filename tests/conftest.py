"""Shared fixtures: small, fast instances of every major object."""

from __future__ import annotations

import pytest

from repro.amr.applications import AMR64, BlastWave, ShockPool3D
from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.config import SchemeParams, SimParams
from repro.distsys import ConstantTraffic, lan_system, parallel_system, wan_system
from repro.runtime import root_blocks


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the default result cache at a per-test temp dir.

    The CLI caches results under ``.repro_cache`` by default; during tests
    that must neither dirty the working directory nor leak state between
    tests.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))


@pytest.fixture
def domain3d() -> Box:
    return Box.cube(0, 16, 3)


@pytest.fixture
def domain2d() -> Box:
    return Box.cube(0, 16, 2)


@pytest.fixture
def small_hierarchy(domain3d) -> GridHierarchy:
    """A 3-level hierarchy with four root slabs, no refinement yet."""
    h = GridHierarchy(domain3d, refinement_ratio=2, max_levels=3)
    h.create_root_grids(root_blocks(domain3d, (4, 1, 1)))
    return h


@pytest.fixture
def shockpool_app() -> ShockPool3D:
    return ShockPool3D(domain_cells=16, max_levels=3)


@pytest.fixture
def amr64_app() -> AMR64:
    return AMR64(domain_cells=16, max_levels=3, nclumps=8)


@pytest.fixture
def blastwave_app() -> BlastWave:
    return BlastWave(domain_cells=16, max_levels=3)


@pytest.fixture
def wan2x2():
    """Two groups of two processors over the shared WAN."""
    return wan_system(2, ConstantTraffic(0.3), base_speed=2.0e4)


@pytest.fixture
def lan2x2():
    return lan_system(2, ConstantTraffic(0.3), base_speed=2.0e4)


@pytest.fixture
def par4():
    """One dedicated four-processor machine."""
    return parallel_system(4, base_speed=2.0e4)


@pytest.fixture
def sim_params() -> SimParams:
    return SimParams()


@pytest.fixture
def scheme_params() -> SchemeParams:
    return SchemeParams()
