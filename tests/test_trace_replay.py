"""Replay correctness: the golden bit-for-bit contract, cross-scheme
replays, desync detection and the executor/cache integration.

The central claim (docs/TRACES.md): replaying a just-recorded trace under
the identical system + scheme reproduces the recorded run's DLB decisions
and :class:`RunResult` *bit-for-bit* -- including the full event log --
without running the AMR solver.
"""

from dataclasses import replace

import pytest

from repro.config import ExecParams, FaultParams, TraceParams
from repro.exec import make_executor
from repro.harness.experiment import (
    ExperimentConfig,
    resolve_trace_config,
    run_experiment,
    run_sequential,
)
from repro.harness.persist import run_result_to_dict
from repro.harness.sweep import run_fault_scenarios, run_sweep
from repro.traces import (
    TraceFormatError,
    TraceReplayError,
    TraceReplayRunner,
    record_run,
    replay_trace,
    write_trace,
)

SMALL = ExperimentConfig(procs_per_group=2, steps=3, domain_cells=16,
                         max_levels=3)
ALL_SCHEMES = ("parallel", "distributed", "static", "diffusion")


def _events_as_tuples(result):
    """The full event log, comparable field by field."""
    return [
        (type(e).__name__, sorted(vars(e).items()))
        for e in (result.events or [])
    ]


class TestGoldenEquivalence:
    """Replay under the recorded scheme + system is bit-for-bit exact."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_replay_reproduces_recorded_run(self, scheme):
        recorded, trace = record_run(SMALL, scheme)
        replayed = replay_trace(trace, SMALL, scheme, strict=True)
        assert run_result_to_dict(replayed) == run_result_to_dict(recorded)
        assert _events_as_tuples(replayed) == _events_as_tuples(recorded)

    def test_replay_through_harness_from_file(self, tmp_path):
        out = tmp_path / "run.trace.jsonl.gz"
        recorded, _ = record_run(SMALL, "distributed", out=out)
        cfg = replace(SMALL, trace=TraceParams(source=str(out), strict=True))
        replayed = run_experiment(cfg, "distributed")
        assert run_result_to_dict(replayed) == run_result_to_dict(recorded)

    def test_replay_with_faults_matches_faulted_recording(self):
        faulted = replace(SMALL, fault=FaultParams(scenario="slowdown"))
        recorded, trace = record_run(faulted, "distributed")
        replayed = replay_trace(trace, faulted, "distributed", strict=True)
        assert run_result_to_dict(replayed) == run_result_to_dict(recorded)

    def test_manifest_fast_path_is_used(self):
        _, trace = record_run(SMALL, "distributed")
        from repro.core.registry import make_scheme
        from repro.harness.experiment import make_system

        runner = TraceReplayRunner(trace, make_system(SMALL),
                                   make_scheme("distributed"),
                                   sim_params=SMALL.sim_params,
                                   scheme_params=SMALL.effective_scheme_params(),
                                   strict=True)
        runner.run(SMALL.steps)
        assert runner.manifest_fallbacks == 0

    def test_manifest_free_replay_still_matches(self):
        """Manifests are an optimisation: without them the replayer
        recomputes adjacency geometrically to identical results."""
        recorded, trace = record_run(SMALL, "distributed", manifests=False)
        assert not any(r["op"] == "manifest" for r in trace.records)
        replayed = replay_trace(trace, SMALL, "distributed", strict=True)
        assert run_result_to_dict(replayed) == run_result_to_dict(recorded)


class TestCrossReplay:
    """One trace, many what-ifs: different scheme / gamma / system / faults."""

    @pytest.fixture(scope="class")
    def trace(self):
        _, trace = record_run(SMALL, "distributed")
        return trace

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_any_scheme_replays(self, trace, scheme):
        result = replay_trace(trace, SMALL, scheme)
        assert result.nsteps == SMALL.steps
        assert result.total_time > 0

    def test_gamma_changes_decisions(self, trace):
        eager = replay_trace(trace, replace(SMALL, gamma=0.0), "distributed")
        reluctant = replay_trace(trace, replace(SMALL, gamma=1e9), "distributed")
        assert eager.redistributions >= reluctant.redistributions
        assert reluctant.redistributions == 0

    def test_other_system_shape(self, trace):
        result = replay_trace(trace, replace(SMALL, procs_per_group=4,
                                             network="lan"), "distributed")
        assert result.system == "4+4procs"

    def test_fault_schedule_applies(self, trace):
        clean = replay_trace(trace, SMALL, "static")
        hurt = replay_trace(trace, replace(SMALL, fault=FaultParams(
            scenario="slowdown", severity=8.0)), "static")
        assert hurt.total_time > clean.total_time

    def test_sequential_reference(self, tmp_path):
        out = tmp_path / "t.trace.jsonl.gz"
        record_run(SMALL, "distributed", out=out)
        # strict stays on: run_sequential drops it (the E(1) reference is a
        # cross-scheme replay by construction)
        cfg = replace(SMALL, trace=TraceParams(source=str(out), strict=True))
        result = run_sequential(cfg)
        assert result.total_time > 0
        assert result.comm_time == 0.0


class TestDesyncDetection:
    def test_more_steps_than_recorded_raises(self):
        _, trace = record_run(SMALL, "distributed")
        from repro.core.registry import make_scheme
        from repro.harness.experiment import make_system

        runner = TraceReplayRunner(trace, make_system(SMALL),
                                   make_scheme("distributed"),
                                   sim_params=SMALL.sim_params)
        with pytest.raises(TraceReplayError, match="holds"):
            runner.run(SMALL.steps + 5)

    def test_harness_clamps_to_trace_length(self, tmp_path):
        out = tmp_path / "t.trace.jsonl.gz"
        record_run(SMALL, "distributed", out=out)
        cfg = replace(SMALL, steps=50,
                      trace=TraceParams(source=str(out)))
        result = run_experiment(cfg, "distributed")
        assert result.nsteps == SMALL.steps

    def test_strict_cross_scheme_divergence_raises(self):
        """Recorded under a splitting scheme, strictly replayed under a
        non-splitting one: the hierarchies legitimately diverge and strict
        says so instead of silently re-balancing different workloads."""
        _, trace = record_run(SMALL, "distributed")
        with pytest.raises(TraceReplayError, match="divergence"):
            replay_trace(trace, SMALL, "static", strict=True)


class TestExecutorIntegration:
    def test_replay_results_cache_by_trace_content(self, tmp_path):
        out = tmp_path / "t.trace.jsonl.gz"
        recorded, _ = record_run(SMALL, "distributed", out=out)
        ex = make_executor(ExecParams(jobs=1, use_cache=True,
                                      cache_dir=str(tmp_path / "cache")))
        cfg = replace(SMALL, trace=TraceParams(source=str(out)))
        first = run_experiment(cfg, "distributed", executor=ex)
        assert ex.last_stats.cache_hits == 0
        second = run_experiment(cfg, "distributed", executor=ex)
        assert ex.last_stats.cache_hits == 1
        assert first.total_time == second.total_time == recorded.total_time

        # the same bytes under another name must hit as well
        copy = tmp_path / "renamed.trace.jsonl.gz"
        copy.write_bytes(out.read_bytes())
        run_experiment(replace(cfg, trace=TraceParams(source=str(copy))),
                       "distributed", executor=ex)
        assert ex.last_stats.cache_hits == 1

    def test_changed_bytes_fail_pinned_hash(self, tmp_path):
        out = tmp_path / "t.trace.jsonl.gz"
        record_run(SMALL, "distributed", out=out)
        cfg = resolve_trace_config(
            replace(SMALL, trace=TraceParams(source=str(out))))
        # overwrite with a different (valid) trace: pinned hash must reject
        _, other = record_run(replace(SMALL, steps=2), "distributed")
        write_trace(other, out)
        with pytest.raises(TraceFormatError, match="content changed"):
            run_experiment(cfg, "distributed")

    def test_replay_trace_str_source_uses_executor(self, tmp_path):
        out = tmp_path / "t.trace.jsonl.gz"
        recorded, _ = record_run(SMALL, "distributed", out=out)
        ex = make_executor(ExecParams(jobs=1, use_cache=True,
                                      cache_dir=str(tmp_path / "cache")))
        result = replay_trace(str(out), SMALL, "distributed", executor=ex)
        assert result.total_time == recorded.total_time

    def test_replay_trace_object_rejects_executor(self):
        _, trace = record_run(SMALL, "distributed")
        with pytest.raises(ValueError, match="write_trace"):
            replay_trace(trace, SMALL, "distributed", executor=object())


class TestSweepsOverTraces:
    def test_sweep_from_file_trace(self, tmp_path):
        out = tmp_path / "t.trace.jsonl.gz"
        record_run(SMALL, "distributed", out=out)
        cfg = replace(SMALL, trace=TraceParams(source=str(out)))
        sweep = run_sweep(cfg, procs_per_group=(1, 2))
        assert len(sweep.pairs) == 2
        for pair in sweep.pairs:
            assert pair.parallel.total_time > 0
            assert pair.distributed.total_time > 0

    def test_fault_scenarios_from_synth_trace(self):
        cfg = replace(SMALL, trace=TraceParams(source="synth:adversarial"))
        results = run_fault_scenarios(cfg, scenarios=("none", "slowdown"))
        assert set(results) == {"none", "slowdown"}
        for pair in results.values():
            assert pair.distributed.app == "synth:adversarial"

    def test_synth_replay_deterministic_across_calls(self):
        cfg = replace(SMALL, trace=TraceParams(source="synth:hotspot", seed=3))
        a = run_experiment(cfg, "distributed")
        b = run_experiment(cfg, "distributed")
        assert run_result_to_dict(a) == run_result_to_dict(b)

    def test_unknown_synth_name_raises(self):
        cfg = replace(SMALL, trace=TraceParams(source="synth:warpdrive"))
        with pytest.raises(ValueError, match="registered"):
            run_experiment(cfg, "distributed")


class TestObservability:
    def test_replay_emits_trace_metrics(self):
        from repro.obs import get_default_metrics

        _, trace = record_run(SMALL, "distributed")
        before = get_default_metrics().counter("trace.replayed_runs").value
        replay_trace(trace, SMALL, "distributed")
        after = get_default_metrics().counter("trace.replayed_runs").value
        assert after == before + 1

    def test_record_emits_trace_metrics(self):
        from repro.obs import get_default_metrics

        before = get_default_metrics().counter("trace.recorded_runs").value
        record_run(SMALL, "distributed")
        after = get_default_metrics().counter("trace.recorded_runs").value
        assert after == before + 1

    def test_traced_replay_has_spans(self):
        from repro.obs import Tracer

        _, trace = record_run(SMALL, "distributed")
        tracer = Tracer()
        result = replay_trace(trace, SMALL, "distributed", tracer=tracer)
        assert result.spans
        assert tracer.record_count > 0
