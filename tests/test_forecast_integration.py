"""Tests for NWS forecasting wired into the distributed scheme's cost model."""

from __future__ import annotations

import pytest

from repro.amr.applications import ShockPool3D
from repro.core import DistributedDLB
from repro.distsys import BurstyTraffic, ConstantTraffic, wan_system
from repro.distsys.events import GlobalDecisionEvent, ProbeEvent
from repro.runtime import SAMRRunner


def run_with(scheme, traffic, steps=4):
    app = ShockPool3D(domain_cells=16, max_levels=3)
    system = wan_system(2, traffic, base_speed=2e4)
    runner = SAMRRunner(app, system, scheme)
    return runner.run(steps)


class TestForecastIntegration:
    def test_default_is_off(self):
        scheme = DistributedDLB()
        assert not scheme.use_forecast
        assert scheme._alpha_forecaster is None

    def test_forecast_scheme_completes(self):
        r = run_with(DistributedDLB(use_forecast=True), ConstantTraffic(0.3))
        assert r.total_time > 0
        assert r.events.of_type(GlobalDecisionEvent)

    def test_forecasters_fed_by_probes(self):
        scheme = DistributedDLB(use_forecast=True)
        r = run_with(scheme, ConstantTraffic(0.3))
        nprobes = len(r.events.of_type(ProbeEvent))
        if nprobes:
            assert scheme._alpha_forecaster.forecast() is not None
            assert scheme._beta_forecaster.forecast() is not None

    def test_constant_traffic_forecast_matches_probe(self):
        """On a static link the forecast converges to the probed truth, so
        both variants make identical decisions."""
        plain = run_with(DistributedDLB(use_forecast=False), ConstantTraffic(0.3))
        fc = run_with(DistributedDLB(use_forecast=True), ConstantTraffic(0.3))
        assert plain.redistributions == fc.redistributions
        assert plain.total_time == pytest.approx(fc.total_time, rel=1e-6)

    def test_bursty_traffic_smooths_cost_inputs(self):
        """Under bursty traffic the forecast variant still runs and decides;
        its decision count stays within one of the plain variant (the gate
        is robust, forecasting only refines the inputs)."""
        plain = run_with(
            DistributedDLB(use_forecast=False),
            BurstyTraffic(seed=5, base=0.1, burst=0.7, bucket_seconds=2.0),
            steps=5,
        )
        fc = run_with(
            DistributedDLB(use_forecast=True),
            BurstyTraffic(seed=5, base=0.1, burst=0.7, bucket_seconds=2.0),
            steps=5,
        )
        assert fc.total_time > 0
        assert abs(plain.redistributions - fc.redistributions) <= 2
