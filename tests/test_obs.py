"""Unit tests for repro.obs: tracer, metrics registry, exporters."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    flame_summary,
    get_default_metrics,
    prometheus_text,
    series_name,
    set_default_metrics,
    span_jsonl_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_span_jsonl,
)


class TestTracer:
    def test_span_records_names_and_nesting(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        records = t.records()
        assert [r.name for r in records] == ["inner", "outer"]
        inner, outer = records
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_attrs(self):
        t = Tracer()
        with t.span("s", level=2) as span:
            span.set_attribute("gain", 1.5)
            span.set_attributes(cost=0.2, invoked=True)
        (rec,) = t.records()
        assert rec.attrs == {"level": 2, "gain": 1.5, "cost": 0.2,
                             "invoked": True}

    def test_bound_clock_measures_simulated_time(self):
        clock = {"now": 10.0}
        t = Tracer(clock=lambda: clock["now"])
        with t.span("s"):
            clock["now"] = 12.5
        (rec,) = t.records()
        assert rec.sim_start == 10.0
        assert rec.sim_end == 12.5
        assert rec.sim_elapsed == pytest.approx(2.5)

    def test_wall_clock_advances(self):
        t = Tracer()
        with t.span("s"):
            pass
        (rec,) = t.records()
        assert rec.wall_end >= rec.wall_start

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("s", foo=1) as span:
            span.set_attribute("bar", 2)  # must be a silent no-op
        assert t.record_count == 0
        assert t.records() == []

    def test_disabled_span_is_shared_singleton(self):
        t = Tracer(enabled=False)
        assert t.span("a") is t.span("b")
        assert NULL_TRACER.span("x") is t.span("a")

    def test_exception_recorded_and_propagated(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("no")
        (rec,) = t.records()
        assert rec.attrs["error"] == "RuntimeError"

    def test_extend_merges_foreign_records(self):
        a, b = Tracer(track="a"), Tracer(track="b")
        with a.span("x"):
            pass
        with b.span("y"):
            pass
        a.extend(b.records())
        assert {r.track for r in a.records()} == {"a", "b"}

    def test_clear(self):
        t = Tracer()
        with t.span("s"):
            pass
        t.clear()
        assert t.record_count == 0


class TestMetricsRegistry:
    def test_counter(self):
        m = MetricsRegistry()
        m.counter("dlb.decisions").inc()
        m.counter("dlb.decisions").inc(2)
        assert m.snapshot()["counters"]["dlb.decisions"] == 3

    def test_counter_rejects_negative(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.counter("c").inc(-1)

    def test_gauge(self):
        m = MetricsRegistry()
        g = m.gauge("run.total_time")
        g.set(4.0)
        g.inc(1.0)
        g.dec(2.0)
        assert m.snapshot()["gauges"]["run.total_time"] == pytest.approx(3.0)

    def test_histogram_summary(self):
        m = MetricsRegistry()
        h = m.histogram("exec.task_wall_seconds")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        summ = m.snapshot()["histograms"]["exec.task_wall_seconds"]
        assert summ["count"] == 3
        assert summ["min"] == 1.0
        assert summ["max"] == 3.0
        assert summ["mean"] == pytest.approx(2.0)

    def test_labels_make_distinct_series(self):
        m = MetricsRegistry()
        m.counter("comm.remote_bytes", kind="ghost").inc(10)
        m.counter("comm.remote_bytes", kind="migration").inc(5)
        snap = m.snapshot()["counters"]
        assert snap["comm.remote_bytes{kind=ghost}"] == 10
        assert snap["comm.remote_bytes{kind=migration}"] == 5

    def test_series_name_sorts_labels(self):
        assert series_name("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"

    def test_kind_conflict_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(ValueError):
            m.gauge("x")

    def test_same_series_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("c", a=1) is m.counter("c", a=1)

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_default_metrics(fresh)
        try:
            assert get_default_metrics() is fresh
        finally:
            set_default_metrics(previous)


class TestPrometheusText:
    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_counter_gauge_histogram_forms(self):
        m = MetricsRegistry()
        m.counter("serve.jobs_submitted").inc(3)
        m.gauge("serve.queue_depth").set(2)
        h = m.histogram("serve.job_wall_seconds")
        h.observe(0.5)
        h.observe(1.5)
        text = prometheus_text(m)
        assert "# TYPE serve_jobs_submitted_total counter" in text
        assert "serve_jobs_submitted_total 3" in text
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_queue_depth 2" in text
        assert "# TYPE serve_job_wall_seconds summary" in text
        assert "serve_job_wall_seconds_count 2" in text
        assert "serve_job_wall_seconds_sum 2" in text
        assert "serve_job_wall_seconds_min 0.5" in text
        assert "serve_job_wall_seconds_max 1.5" in text
        assert text.endswith("\n")

    def test_labels_render_in_braces(self):
        m = MetricsRegistry()
        m.counter("serve.jobs_completed", status="done").inc()
        m.counter("serve.jobs_completed", status="failed").inc(2)
        text = prometheus_text(m)
        assert 'serve_jobs_completed_total{status="done"} 1' in text
        assert 'serve_jobs_completed_total{status="failed"} 2' in text
        # one TYPE header for the metric, not one per labeled series
        assert text.count("# TYPE serve_jobs_completed_total") == 1

    def test_output_is_deterministic(self):
        def build():
            m = MetricsRegistry()
            m.counter("b.second").inc()
            m.counter("a.first", k="v").inc()
            m.gauge("c.third").set(1)
            return m

        assert prometheus_text(build()) == prometheus_text(build())
        lines = prometheus_text(build()).splitlines()
        assert lines[0].startswith("# TYPE a_first")


def _sample_records():
    clock = {"now": 0.0}
    t = Tracer(clock=lambda: clock["now"], track="sample")
    with t.span("run"):
        clock["now"] = 1.0
        with t.span("solve", level=0):
            clock["now"] = 3.0
        with t.span("solve", level=0):
            clock["now"] = 4.0
    return t.records()


class TestExporters:
    def test_chrome_trace_shape(self):
        payload = chrome_trace(_sample_records())
        assert validate_chrome_trace(payload) == []
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"run", "solve"}
        run = next(e for e in xs if e["name"] == "run")
        assert run["dur"] == pytest.approx(4.0 * 1e6)

    def test_chrome_trace_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_records(), path)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_span_jsonl(self, tmp_path):
        lines = list(span_jsonl_lines(_sample_records()))
        assert len(lines) == 3
        for line in lines:
            parsed = json.loads(line)
            assert {"name", "track", "sim_start", "sim_end"} <= set(parsed)
        path = tmp_path / "spans.jsonl"
        write_span_jsonl(_sample_records(), path)
        assert len(path.read_text().splitlines()) == 3

    def test_flame_summary_totals_and_calls(self):
        out = flame_summary(_sample_records())
        assert "run" in out and "solve" in out
        assert "calls     2" in out  # the two solve spans aggregate

    def test_flame_summary_wall_clock(self):
        out = flame_summary(_sample_records(), clock="wall")
        assert "host clock" in out

    def test_validate_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{}]}) != []
        bad = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1,
                                "ts": -5.0, "dur": 1.0}]}
        assert validate_chrome_trace(bad) != []


class TestTimelineInitRow:
    def test_events_before_first_decision_get_init_row(self):
        from repro.distsys.events import (
            ComputeEvent,
            EventLog,
            GlobalDecisionEvent,
        )
        from repro.harness import render_step_timeline, step_timeline

        log = EventLog()
        log.record(ComputeEvent(time=0.0, level=0, seq=0, elapsed=2.0,
                                max_load=1.0, total_load=1.0))
        log.record(GlobalDecisionEvent(time=2.0, gain=0.0, cost=0.0,
                                       gamma=2.0, imbalance_detected=False,
                                       invoked=False))
        log.record(ComputeEvent(time=2.0, level=0, seq=1, elapsed=3.0,
                                max_load=1.0, total_load=1.0))
        steps = step_timeline(log)
        assert [s["step"] for s in steps] == [-1.0, 0.0]
        assert steps[0]["compute"] == pytest.approx(2.0)
        assert steps[1]["compute"] == pytest.approx(3.0)
        assert "init" in render_step_timeline(log)

    def test_no_decisions_all_events_in_init_row(self):
        from repro.harness import ExperimentConfig, run_experiment, step_timeline

        r = run_experiment(ExperimentConfig(procs_per_group=1, steps=2),
                           "parallel")
        steps = step_timeline(r.events)
        assert [s["step"] for s in steps] == [-1.0]
        assert steps[0]["compute"] == pytest.approx(r.compute_time)

    def test_boundary_at_index_zero_has_no_init_row(self):
        from repro.harness import ExperimentConfig, run_experiment, step_timeline

        r = run_experiment(ExperimentConfig(procs_per_group=1, steps=2),
                           "distributed")
        steps = step_timeline(r.events)
        assert [s["step"] for s in steps] == [0.0, 1.0]
