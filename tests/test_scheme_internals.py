"""Depth tests for scheme internals not covered by the behavioural suites."""

from __future__ import annotations

import pytest

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.config import SchemeParams
from repro.core import DistributedDLB, ParallelDLB
from repro.core.base import BalanceContext, DLBScheme, execute_moves
from repro.core.gain import WorkloadHistory
from repro.distsys import ClusterSimulator, ConstantTraffic, wan_system
from repro.distsys.events import LocalBalanceEvent
from repro.partition import GridAssignment
from repro.runtime import root_blocks


def make_ctx(blocks=(8, 1, 1)):
    domain = Box.cube(0, 16, 3)
    h = GridHierarchy(domain, 2, 3)
    h.create_root_grids(root_blocks(domain, blocks))
    system = wan_system(2, ConstantTraffic(0.2), base_speed=2e4)
    return BalanceContext(
        hierarchy=h,
        assignment=GridAssignment(h, system),
        system=system,
        sim=ClusterSimulator(system),
        history=WorkloadHistory(),
    )


class TestExecuteMoves:
    def test_stale_plan_rejected(self):
        ctx = make_ctx()
        ParallelDLB().initial_distribution(ctx)
        gid = ctx.hierarchy.level_grids(0)[0].gid
        actual = ctx.assignment.pid_of(gid)
        wrong_src = (actual + 1) % ctx.system.nprocs
        with pytest.raises(ValueError):
            execute_moves(ctx, [(gid, wrong_src, actual)], level=0,
                          purpose="local-balance")

    def test_empty_moves_log_event_without_cost(self):
        ctx = make_ctx()
        ParallelDLB().initial_distribution(ctx)
        clock = ctx.sim.clock
        execute_moves(ctx, [], level=1, purpose="local-balance")
        assert ctx.sim.clock == clock
        ev = ctx.sim.log.of_type(LocalBalanceEvent)
        assert len(ev) == 1 and ev[0].moved_grids == 0

    def test_moves_charge_migration_and_update_owner(self):
        ctx = make_ctx()
        ParallelDLB().initial_distribution(ctx)
        grid = ctx.hierarchy.level_grids(0)[0]
        src = ctx.assignment.pid_of(grid.gid)
        dst = (src + 2) % ctx.system.nprocs  # other group for nonzero cost
        n, cells = execute_moves(ctx, [(grid.gid, src, dst)], level=0,
                                 purpose="local-balance")
        assert (n, cells) == (1, grid.ncells)
        assert ctx.assignment.pid_of(grid.gid) == dst
        assert ctx.sim.balance_overhead > 0

    def test_abstract_scheme_hooks_raise(self):
        scheme = DLBScheme()
        ctx = make_ctx()
        with pytest.raises(NotImplementedError):
            scheme.initial_distribution(ctx)
        with pytest.raises(NotImplementedError):
            scheme.place_new_grids(ctx, [])
        with pytest.raises(NotImplementedError):
            scheme.local_balance(ctx, 0, 0.0)
        with pytest.raises(NotImplementedError):
            scheme.global_balance(ctx, 0.0)


class TestImbalanceDetection:
    def setup_scheme(self, loads, threshold=1.05, walltime=10.0):
        ctx = make_ctx()
        ctx.scheme_params = SchemeParams(imbalance_threshold=threshold)
        scheme = DistributedDLB()
        scheme.initial_distribution(ctx)
        ctx.history.record_solve(0, loads)
        ctx.history.end_coarse_step(walltime)
        return ctx, scheme

    def test_no_history_no_imbalance(self):
        ctx = make_ctx()
        scheme = DistributedDLB()
        assert not scheme._imbalance_exists(ctx)

    def test_balanced_below_threshold(self):
        ctx, scheme = self.setup_scheme({0: 10.0, 1: 10.0, 2: 10.2, 3: 10.0})
        assert not scheme._imbalance_exists(ctx)

    def test_imbalanced_above_threshold(self):
        ctx, scheme = self.setup_scheme({0: 20.0, 1: 0.0, 2: 10.0, 3: 0.0})
        assert scheme._imbalance_exists(ctx)

    def test_one_group_idle_counts_as_imbalance(self):
        ctx, scheme = self.setup_scheme({0: 20.0, 1: 0.0, 2: 0.0, 3: 0.0})
        assert scheme._imbalance_exists(ctx)

    def test_all_idle_is_balanced(self):
        ctx, scheme = self.setup_scheme({0: 0.0, 1: 0.0, 2: 0.0, 3: 0.0})
        assert not scheme._imbalance_exists(ctx)

    def test_level0_work_per_cell(self):
        ctx, scheme = self.setup_scheme({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
        assert DistributedDLB._level0_work_per_cell(ctx) == pytest.approx(1.0)


class TestParallelPlacementCost:
    def test_remote_placement_charges_interpolation_transfer(self):
        """When the baseline places a child away from its parent, the
        interpolated initial data crosses the network once."""
        ctx = make_ctx()
        scheme = ParallelDLB()
        scheme.initial_distribution(ctx)
        # force every processor except a remote one to look "loaded"
        parent = ctx.hierarchy.level_grids(0)[0]
        parent_pid = ctx.assignment.pid_of(parent.gid)
        child = ctx.hierarchy.add_grid(1, parent.box.refine(2), parent.gid)
        clock = ctx.sim.clock
        scheme.place_new_grids(ctx, [child.gid])
        placed = ctx.assignment.pid_of(child.gid)
        if placed != parent_pid:
            assert ctx.sim.clock > clock  # transfer was charged
