"""Unit/property tests for grid data, prolongation, restriction, ghosts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.grid import Grid
from repro.amr.hierarchy import GridHierarchy
from repro.amr.solver import (
    GridData,
    fill_ghosts,
    prolong_piecewise_constant,
    restrict_conservative,
)


class TestGridData:
    def grid(self):
        return Grid(gid=0, level=0, box=Box((2, 2), (6, 6)))

    def test_shapes(self):
        gd = GridData(self.grid(), nghost=1)
        assert gd.u.shape == (6, 6)
        assert gd.interior.shape == (4, 4)

    def test_interior_roundtrip(self):
        gd = GridData(self.grid())
        gd.interior = np.arange(16.0).reshape(4, 4)
        assert gd.interior[3, 3] == 15.0
        assert gd.u[1:-1, 1:-1].sum() == gd.total()

    def test_view_addresses_lattice_coordinates(self):
        gd = GridData(self.grid())
        gd.view(Box((2, 2), (3, 3)))[...] = 7.0
        assert gd.interior[0, 0] == 7.0

    def test_view_outside_raises(self):
        gd = GridData(self.grid())
        with pytest.raises(ValueError):
            gd.view(Box((0, 0), (3, 3)))  # reaches beyond ghost shell

    def test_ghost_boxes_cover_shell(self):
        gd = GridData(self.grid(), nghost=1)
        shell = sum(b.ncells for b in gd.ghost_boxes())
        assert shell == 36 - 16

    def test_set_from_function(self):
        gd = GridData(self.grid())
        gd.set_from_function(lambda x, y: x + y, cell_width=1.0)
        # cell (2,2) centre is (2.5, 2.5)
        assert gd.interior[0, 0] == pytest.approx(5.0)

    def test_bad_nghost_raises(self):
        with pytest.raises(ValueError):
            GridData(self.grid(), nghost=0)


class TestProlongRestrict:
    def test_prolong_repeats(self):
        coarse = np.array([[1.0, 2.0], [3.0, 4.0]])
        fine = prolong_piecewise_constant(coarse, 2)
        assert fine.shape == (4, 4)
        assert (fine[:2, :2] == 1.0).all()
        assert (fine[2:, 2:] == 4.0).all()

    def test_restrict_averages(self):
        fine = np.arange(16.0).reshape(4, 4)
        coarse = restrict_conservative(fine, 2)
        assert coarse.shape == (2, 2)
        assert coarse[0, 0] == pytest.approx(fine[:2, :2].mean())

    def test_restrict_indivisible_raises(self):
        with pytest.raises(ValueError):
            restrict_conservative(np.zeros((3, 4)), 2)

    def test_bad_ratio_raises(self):
        with pytest.raises(ValueError):
            prolong_piecewise_constant(np.zeros((2, 2)), 0)
        with pytest.raises(ValueError):
            restrict_conservative(np.zeros((2, 2)), 0)

    @given(
        seed=st.integers(min_value=0, max_value=999),
        ratio=st.sampled_from([2, 3, 4]),
        n=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_identity(self, seed, ratio, n):
        """restrict(prolong(x)) == x exactly."""
        rng = np.random.default_rng(seed)
        coarse = rng.random((n, n))
        back = restrict_conservative(prolong_piecewise_constant(coarse, ratio), ratio)
        assert np.allclose(back, coarse)

    @given(seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=30, deadline=None)
    def test_property_restriction_conserves_mean(self, seed):
        rng = np.random.default_rng(seed)
        fine = rng.random((8, 8))
        coarse = restrict_conservative(fine, 2)
        assert coarse.mean() == pytest.approx(fine.mean())


class TestFillGhosts:
    def two_sibling_setup(self):
        domain = Box((0, 0), (8, 4))
        h = GridHierarchy(domain, 2, 2)
        left, right = h.create_root_grids(
            [Box((0, 0), (4, 4)), Box((4, 0), (8, 4))]
        )
        data = {
            left.gid: GridData(left),
            right.gid: GridData(right),
        }
        data[left.gid].interior = np.full((4, 4), 1.0)
        data[right.gid].interior = np.full((4, 4), 2.0)
        return h, left, right, data

    def test_sibling_ghosts_copied(self):
        h, left, right, data = self.two_sibling_setup()
        fill_ghosts(h, 0, data, {})
        # left grid's +x ghost column lies inside the right grid
        ghost = data[left.gid].view(Box((4, 0), (5, 4)))
        assert (ghost == 2.0).all()
        ghost_r = data[right.gid].view(Box((3, 0), (4, 4)))
        assert (ghost_r == 1.0).all()

    def test_domain_edges_clamped(self):
        h, left, right, data = self.two_sibling_setup()
        fill_ghosts(h, 0, data, {})
        # left grid's -x ghost column is outside the domain: outflow clamp
        ghost = data[left.gid].view(Box((-1, 0), (0, 4)))
        assert (ghost == 1.0).all()

    def test_parent_ghosts_interpolated(self):
        domain = Box((0, 0), (8, 8))
        h = GridHierarchy(domain, 2, 2)
        (root,) = h.create_root_grids([domain])
        child = h.add_grid(1, Box((4, 4), (8, 8)), root.gid)
        pdata = GridData(root)
        pdata.set_from_function(lambda x, y: x, cell_width=1.0)
        cdata = GridData(child)
        cdata.interior = np.zeros((4, 4))
        fill_ghosts(h, 1, {child.gid: cdata}, {root.gid: pdata})
        # child ghost at fine cell (3, 4) sits in coarse cell (1, 2):
        # parent value x = 1.5
        assert cdata.view(Box((3, 4), (4, 5)))[0, 0] == pytest.approx(1.5)

    def test_all_ghosts_valid_after_fill(self):
        h, left, right, data = self.two_sibling_setup()
        fill_ghosts(h, 0, data, {})
        assert data[left.gid].valid.all()
        assert data[right.gid].valid.all()
