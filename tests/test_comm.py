"""Unit tests for the message cost model."""

from __future__ import annotations

import pytest

from repro.distsys.comm import CommPhaseResult, Message, MessageKind, comm_phase_time
from repro.distsys.system import wan_system
from repro.distsys.traffic import ConstantTraffic


@pytest.fixture
def system():
    return wan_system(2, ConstantTraffic(0.0))


def wan_params(system, t=0.0):
    link = system.inter_link(0, 1)
    return link.alpha(t), link.beta(t), link.per_message_overhead


class TestMessage:
    def test_negative_bytes_raise(self):
        with pytest.raises(ValueError):
            Message(0, 1, -5, MessageKind.SIBLING)

    def test_kinds_cover_taxonomy(self):
        assert {k.value for k in MessageKind} == {
            "sibling", "parent_child", "migration", "probe", "control",
        }


class TestCommPhaseTime:
    def test_empty_phase_free(self):
        r = comm_phase_time(wan_system(1), [], 0.0)
        assert r.elapsed == 0.0

    def test_self_message_free(self, system):
        r = comm_phase_time(system, [Message(0, 0, 1e6, MessageKind.SIBLING)], 0.0)
        assert r.elapsed == 0.0
        assert r.local_messages == 0

    def test_single_remote_message(self, system):
        alpha, beta, oh = wan_params(system)
        r = comm_phase_time(system, [Message(0, 2, 1000, MessageKind.SIBLING)], 0.0)
        assert r.elapsed == pytest.approx(alpha + oh + 1000 * beta)
        assert r.remote_messages == 1
        assert r.remote_bytes == 1000

    def test_same_pair_bundled_single_latency(self, system):
        alpha, beta, oh = wan_params(system)
        msgs = [
            Message(0, 2, 1000, MessageKind.SIBLING),
            Message(0, 2, 3000, MessageKind.PARENT_CHILD),
        ]
        r = comm_phase_time(system, msgs, 0.0)
        # one bundle: one latency, one overhead, summed volume
        assert r.elapsed == pytest.approx(alpha + oh + 4000 * beta)

    def test_distinct_pairs_overlap_latency_pay_overhead(self, system):
        """Concurrent transfers overlap the propagation latency but each
        bundle pays its software overhead."""
        alpha, beta, oh = wan_params(system)
        msgs = [
            Message(0, 2, 1000, MessageKind.SIBLING),
            Message(1, 3, 1000, MessageKind.SIBLING),
        ]
        r = comm_phase_time(system, msgs, 0.0)
        assert r.elapsed == pytest.approx(alpha + 2 * oh + 2000 * beta)

    def test_links_run_concurrently(self, system):
        """A local and a remote transfer overlap; the WAN dominates."""
        alpha, beta, oh = wan_params(system)
        msgs = [
            Message(0, 2, 1000, MessageKind.SIBLING),  # WAN
            Message(0, 1, 1000, MessageKind.SIBLING),  # intra group 0
        ]
        r = comm_phase_time(system, msgs, 0.0)
        assert r.elapsed == pytest.approx(alpha + oh + 1000 * beta)
        assert r.local_time > 0
        assert r.remote_time > r.local_time

    def test_local_vs_remote_classification(self, system):
        msgs = [
            Message(0, 1, 10, MessageKind.SIBLING),
            Message(2, 3, 20, MessageKind.SIBLING),
            Message(1, 2, 30, MessageKind.SIBLING),
        ]
        r = comm_phase_time(system, msgs, 0.0)
        assert r.local_messages == 2
        assert r.remote_messages == 1
        assert r.local_bytes == 30
        assert r.remote_bytes == 30

    def test_traffic_slows_transfers(self):
        quiet = wan_system(2, ConstantTraffic(0.0))
        busy = wan_system(2, ConstantTraffic(0.6))
        msgs = [Message(0, 2, 1e6, MessageKind.MIGRATION)]
        assert (
            comm_phase_time(busy, msgs, 0.0).elapsed
            > comm_phase_time(quiet, msgs, 0.0).elapsed
        )

    def test_merge_accumulates(self):
        a = CommPhaseResult(elapsed=1.0, local_time=0.5, remote_time=1.0,
                            local_messages=1, remote_messages=2,
                            local_bytes=10, remote_bytes=20)
        b = CommPhaseResult(elapsed=2.0, local_time=0.25, remote_time=0.5,
                            local_messages=3, remote_messages=4,
                            local_bytes=30, remote_bytes=40)
        a.merge(b)
        assert a.elapsed == 3.0
        assert a.local_messages == 4
        assert a.remote_bytes == 60
