"""Unit/integration tests for the SAMR runtime (runner + hooks wiring)."""

from __future__ import annotations

import pytest

from repro.amr.box import Box
from repro.amr.applications import ShockPool3D
from repro.core import DistributedDLB, ParallelDLB
from repro.distsys import ConstantTraffic, parallel_system, wan_system
from repro.distsys.events import (
    CommEvent,
    ComputeEvent,
    GlobalDecisionEvent,
    LocalBalanceEvent,
    RegridEvent,
)
from repro.runtime import SAMRRunner, default_blocks_per_axis, root_blocks


class TestRootBlocks:
    def test_tiles_exactly(self):
        domain = Box.cube(0, 16, 3)
        blocks = root_blocks(domain, (4, 2, 1))
        assert len(blocks) == 8
        assert sum(b.ncells for b in blocks) == domain.ncells
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                assert not a.intersects(b)

    def test_ordered_along_axis0_first(self):
        domain = Box.cube(0, 16, 2)
        blocks = root_blocks(domain, (2, 2))
        assert blocks[0].lo <= blocks[1].lo <= blocks[2].lo <= blocks[3].lo

    def test_nondividing_counts_raise(self):
        with pytest.raises(ValueError):
            root_blocks(Box.cube(0, 10, 2), (3, 1))

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            root_blocks(Box.cube(0, 8, 2), (2, 2, 2))

    def test_default_blocks_enough_granularity(self):
        domain = Box.cube(0, 16, 3)
        counts = default_blocks_per_axis(domain, nprocs=4, min_per_proc=4)
        total = counts[0] * counts[1] * counts[2]
        assert total >= 16
        for d in range(3):
            assert 16 % counts[d] == 0

    def test_default_blocks_non_power_of_two_domain(self):
        """12 halves only twice (12 -> 6 -> 3 cells); counts stop at 4."""
        domain = Box.cube(0, 12, 2)
        counts = default_blocks_per_axis(domain, nprocs=8, min_per_proc=4)
        for d in range(2):
            assert 12 % counts[d] == 0
            assert counts[d] <= 4
        # the tiling it chose must actually be constructible
        assert len(root_blocks(domain, counts)) == counts[0] * counts[1]

    def test_default_blocks_nprocs_exceeding_tiling(self):
        """A tiny domain cannot give 64 processors 4 blocks each; the
        doubling must stop at the divisibility/min-edge limit, not loop."""
        domain = Box.cube(0, 4, 1)
        counts = default_blocks_per_axis(domain, nprocs=64, min_per_proc=4)
        assert counts == (2,)  # 4 cells: one halving, then edges hit 1

    def test_default_blocks_one_cell_axis(self):
        """A 1-cell axis can never split; all granularity must come from
        the other axes."""
        domain = Box((0, 0), (16, 1))
        counts = default_blocks_per_axis(domain, nprocs=2, min_per_proc=4)
        assert counts[1] == 1
        assert counts[0] >= 2
        assert 16 % counts[0] == 0
        assert len(root_blocks(domain, counts)) == counts[0]


def small_runner(scheme, nprocs_per_group=2, steps=0, **kw):
    app = ShockPool3D(domain_cells=16, max_levels=3)
    system = wan_system(nprocs_per_group, ConstantTraffic(0.3), base_speed=2e4)
    runner = SAMRRunner(app, system, scheme, **kw)
    if steps:
        runner.run(steps)
    return runner


class TestRunnerLifecycle:
    def test_initial_adaptation_builds_levels(self):
        runner = small_runner(DistributedDLB())
        assert runner.hierarchy.nlevels == 3  # initial conditions adapted
        runner.assignment.validate()

    def test_run_produces_consistent_result(self):
        runner = small_runner(DistributedDLB())
        result = runner.run(2)
        assert result.nsteps == 2
        assert result.total_time > 0
        assert result.compute_time > 0
        assert result.comm_time > 0
        # accounting closes: parts never exceed the wall clock
        assert result.compute_time + result.comm_time <= result.total_time + 1e-9

    def test_invalid_steps_raise(self):
        runner = small_runner(ParallelDLB())
        with pytest.raises(ValueError):
            runner.run(0)

    def test_assignment_complete_after_run(self):
        runner = small_runner(DistributedDLB(), steps=2)
        runner.assignment.validate()
        runner.hierarchy.validate()

    def test_events_cover_all_phases(self):
        runner = small_runner(DistributedDLB(), steps=2)
        log = runner.sim.log
        assert log.of_type(ComputeEvent)
        assert log.of_type(CommEvent)
        assert log.of_type(RegridEvent)
        assert log.of_type(LocalBalanceEvent)
        assert log.of_type(GlobalDecisionEvent)

    def test_one_global_decision_per_coarse_step(self):
        runner = small_runner(DistributedDLB(), steps=3)
        decisions = runner.sim.log.of_type(GlobalDecisionEvent)
        assert len(decisions) == 3

    def test_solver_order_matches_fig2_shape(self):
        runner = small_runner(DistributedDLB(), steps=1)
        levels = [s.level for s in runner.integrator.trace]
        from repro.amr.integrator import integration_order

        assert levels == integration_order(3, 2)

    def test_history_records_every_coarse_step(self):
        runner = small_runner(DistributedDLB(), steps=3)
        assert runner.history.completed_steps == 3
        rec = runner.history.last_complete
        assert rec.walltime > 0
        assert rec.level_iterations[0] == 1
        assert rec.level_iterations[1] == 2
        assert rec.level_iterations[2] == 4

    def test_result_snapshot_midrun(self):
        runner = small_runner(DistributedDLB())
        runner.integrator.step()
        r = runner.result()
        assert r.nsteps == 1


class TestRunnerCommAttribution:
    def test_parallel_scheme_creates_remote_parent_child_traffic(self):
        runner = small_runner(ParallelDLB(), steps=1)
        assert runner.sim.remote_comm_busy > 0

    def test_distributed_scheme_no_remote_parent_child(self):
        """Children stay in the parent's group, so any remote ghost bytes
        come from level-0 siblings only -- far less than the baseline."""
        par = small_runner(ParallelDLB(), steps=2)
        dist = small_runner(DistributedDLB(), steps=2)
        assert dist.sim.remote_comm_busy < par.sim.remote_comm_busy

    def test_sequential_system_has_zero_comm(self):
        app = ShockPool3D(domain_cells=16, max_levels=3)
        runner = SAMRRunner(app, parallel_system(1, base_speed=2e4), ParallelDLB())
        result = runner.run(2)
        assert result.comm_time == 0.0
        assert result.total_time == pytest.approx(
            result.compute_time + result.balance_overhead, rel=1e-6
        ) or result.total_time >= result.compute_time

    def test_system_label_reports_per_group_sizes(self):
        """Asymmetric federations must not be mislabelled with the first
        group's size (the old ``NxM`` format said "3x1procs" here)."""
        from repro.distsys import multi_site_system

        app = ShockPool3D(domain_cells=16, max_levels=2)
        system = multi_site_system([1, 2, 1], ConstantTraffic(0.1), base_speed=2e4)
        runner = SAMRRunner(app, system, DistributedDLB())
        assert runner.result().system == "1+2+1procs"

    def test_ghost_cache_consistent_after_redistribution(self):
        """A carve changes level-0 grids; the sibling cache must follow."""
        runner = small_runner(DistributedDLB(), steps=4)
        # simply completing 4 steps without KeyError proves cache hygiene;
        # assert the cache is keyed at the current version
        for level, (version, _pairs) in runner._sibling_cache.items():
            assert version <= runner.hierarchy.version
