"""Tests for the serving daemon: protocol, queue, scheduler behavior, and
the end-to-end determinism / backpressure / cancellation / shutdown
contracts of ``repro serve``.

The end-to-end tests run a real :class:`ServeServer` on its own event
loop in a background thread (worker processes and all) and drive it with
the blocking :class:`ServeClient` over a per-test unix socket.  Signal
handling is exercised in a subprocess -- see ``TestSignals``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.harness.experiment import (
    ExperimentConfig,
    execute_scheme,
    resolve_trace_config,
)
from repro.harness.persist import run_result_to_dict
from repro.config import TraceParams
from repro.serve import (
    AsyncServeClient,
    Job,
    JobNotFoundError,
    JobQueue,
    JobSpec,
    MalformedRequestError,
    QueueFullError,
    ServeClient,
    ServeError,
    ServeServer,
    ShuttingDownError,
    job_track,
)
from repro.serve.protocol import (
    decode_message,
    encode_message,
    error_payload,
    raise_for_error,
)
from repro.serve.wire import (
    config_from_wire,
    config_to_wire,
    spec_from_payload,
    spec_to_payload,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: a fast job: 2-step synthetic-trace replay, ~50ms of simulator work
REPLAY_CFG = ExperimentConfig(procs_per_group=2, steps=2,
                              trace=TraceParams(source="synth:hotspot"))

#: a slower job (full AMR solver) for catching mid-run states
SOLVER_CFG = ExperimentConfig(procs_per_group=2, steps=4)


def expected_run_dict(cfg, scheme="distributed"):
    """What the daemon must stream: the in-process canonical result."""
    return run_result_to_dict(execute_scheme(resolve_trace_config(cfg), scheme))


# ---------------------------------------------------------------------------
# protocol + wire units (no daemon)
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_message_roundtrip(self):
        msg = {"op": "submit", "n": 3, "nested": {"a": [1, 2]}}
        line = encode_message(msg)
        assert line.endswith(b"\n")
        assert decode_message(line) == msg

    def test_decode_garbage_is_malformed(self):
        with pytest.raises(MalformedRequestError):
            decode_message(b"{not json\n")
        with pytest.raises(MalformedRequestError):
            decode_message(b'"a bare string"\n')

    def test_error_payload_roundtrip(self):
        err = QueueFullError("queue is full")
        payload = error_payload(err)
        assert payload["code"] == "queue_full"
        with pytest.raises(QueueFullError, match="queue is full"):
            raise_for_error(payload)

    def test_unknown_code_raises_base_error(self):
        with pytest.raises(ServeError):
            raise_for_error({"code": "mystery", "message": "?"})


class TestWire:
    def test_config_roundtrip_with_trace(self):
        wire = config_to_wire(REPLAY_CFG)
        json.dumps(wire)  # must be JSON-safe
        assert config_from_wire(wire) == REPLAY_CFG

    def test_spec_roundtrip(self):
        spec = JobSpec(kind="sweep", config=SOLVER_CFG, scheme="parallel",
                       priority=2, use_cache=False, procs=(1, 2),
                       schemes=("parallel", "distributed"))
        back = spec_from_payload(spec_to_payload(spec))
        assert back == spec

    @pytest.mark.parametrize("mutate", [
        lambda p: p.__setitem__("kind", "nonsense"),
        lambda p: p.__setitem__("scheme", "no-such-scheme"),
        lambda p: p.__setitem__("config", "not a dict"),
        lambda p: p.__setitem__("config", {"procs_per_group": -3}),
        lambda p: p.__setitem__("priority", "high"),
    ])
    def test_bad_payloads_are_malformed(self, mutate):
        payload = spec_to_payload(JobSpec(kind="run", config=REPLAY_CFG))
        mutate(payload)
        with pytest.raises(MalformedRequestError):
            spec_from_payload(payload)

    def test_sweep_needs_positive_procs(self):
        payload = spec_to_payload(
            JobSpec(kind="sweep", config=SOLVER_CFG, procs=(0,),
                    schemes=("distributed",)))
        with pytest.raises(MalformedRequestError):
            spec_from_payload(payload)


class TestJobQueue:
    def mk(self, client, priority=0, seq=0):
        return Job(job_id=f"j{seq}", client=client,
                   spec=JobSpec(config=REPLAY_CFG, priority=priority), seq=seq)

    def test_priority_then_fairness_then_seq(self):
        q = JobQueue(maxsize=10)
        a1 = self.mk("a", priority=1, seq=1)
        a2 = self.mk("a", priority=0, seq=2)
        b1 = self.mk("b", priority=0, seq=3)
        a3 = self.mk("a", priority=0, seq=4)
        for j in (a1, a2, b1, a3):
            q.push(j)
        # priority 0 first; a entered the fairness order first, then the
        # clients alternate; the priority-1 job goes last
        assert [q.pop_next() for _ in range(4)] == [a2, b1, a3, a1]

    def test_fairness_one_chatty_client_cannot_starve(self):
        q = JobQueue(maxsize=10)
        chatty = [self.mk("chatty", seq=i) for i in range(1, 5)]
        quiet = self.mk("quiet", seq=5)
        for j in chatty + [quiet]:
            q.push(j)
        order = [q.pop_next() for _ in range(5)]
        # the quiet client is served second, not after all four chatty jobs
        assert order[1] is quiet

    def test_bounded_push_raises(self):
        q = JobQueue(maxsize=2)
        q.push(self.mk("a", seq=1))
        q.push(self.mk("a", seq=2))
        assert not q.can_accept()
        with pytest.raises(QueueFullError):
            q.push(self.mk("a", seq=3))

    def test_can_accept_batch(self):
        q = JobQueue(maxsize=3)
        q.push(self.mk("a", seq=1))
        assert q.can_accept(2)
        assert not q.can_accept(3)

    def test_remove_and_drain(self):
        q = JobQueue(maxsize=4)
        j1, j2 = self.mk("a", seq=1), self.mk("a", seq=2)
        q.push(j1)
        q.push(j2)
        assert q.remove(j1)
        assert not q.remove(j1)
        assert q.drain() == [j2]
        assert len(q) == 0


# ---------------------------------------------------------------------------
# end-to-end: a real daemon on a background thread
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def running_server(tmp_path, workers=2, queue_size=8, use_cache=True):
    sock = str(tmp_path / "serve.sock")
    started: concurrent.futures.Future = concurrent.futures.Future()

    def body():
        async def amain():
            server = ServeServer(socket_path=sock, workers=workers,
                                 queue_size=queue_size,
                                 cache_dir=str(tmp_path / "serve_cache"),
                                 use_cache=use_cache)
            await server.start()
            # not the main thread: must decline gracefully
            assert server.install_signal_handlers() is False
            started.set_result(server)
            await server.serve_until_shutdown()

        try:
            asyncio.run(amain())
        except BaseException as err:  # pragma: no cover - surfacing only
            if not started.done():
                started.set_exception(err)
            raise

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    server = started.result(timeout=30)
    client = ServeClient(socket_path=sock, timeout=300)
    try:
        yield client, server
    finally:
        with contextlib.suppress(OSError, ServeError):
            ServeClient(socket_path=sock, timeout=30).shutdown(force=True)
        thread.join(timeout=60)
        assert not thread.is_alive(), "daemon thread failed to drain"


class TestDaemonRoundTrip:
    def test_replay_job_matches_in_process(self, tmp_path):
        with running_server(tmp_path) as (client, _):
            res = client.submit(REPLAY_CFG, scheme="distributed")
        assert res.status == "done" and res.ok and not res.cached
        assert res.raw_run == expected_run_dict(REPLAY_CFG)
        # the reconstructed RunResult matches any persisted result
        assert res.result().total_time == res.raw_run["total_time"]
        assert [e["event"] for e in res.events] == ["started"]

    def test_four_jobs_in_flight_deterministic(self, tmp_path):
        # distinct (config, scheme) pairs so nothing dedups via the cache;
        # each runs for a few hundred ms so none can finish during the
        # submit loop and the in-flight assertion below is not racy
        jobs = [
            (ExperimentConfig(procs_per_group=p, steps=3), scheme)
            for p, scheme in ((4, "distributed"), (6, "distributed"),
                              (6, "parallel"), (8, "distributed"))
        ]
        with running_server(tmp_path, workers=4) as (client, _):
            ids = [client.submit(cfg, scheme=s, wait=False)
                   for cfg, s in jobs]
            counts = client.state()["jobs"]
            in_flight = counts.get("queued", 0) + counts.get("running", 0)
            assert in_flight >= 4
            results = [client.wait(job_id) for job_id in ids]
        for (cfg, scheme), res in zip(jobs, results):
            assert res.status == "done", res.error
            assert res.raw_run == expected_run_dict(cfg, scheme)

    def test_cache_hit_bit_identical_without_worker_slot(self, tmp_path):
        with running_server(tmp_path) as (client, _):
            fresh = client.submit(REPLAY_CFG)
            hit = client.submit(REPLAY_CFG)
            metrics = client.metrics_text()
        assert not fresh.cached and hit.cached
        assert hit.raw_run == fresh.raw_run == expected_run_dict(REPLAY_CFG)
        # the hit never started a worker: no "started" event, one execution
        assert hit.events == []
        assert "serve_cache_hits_total 1" in metrics
        assert "serve_jobs_executed_total 1" in metrics

    def test_wait_replays_history_after_completion(self, tmp_path):
        with running_server(tmp_path) as (client, _):
            job_id = client.submit(REPLAY_CFG, wait=False)
            first = client.wait(job_id)
            again = client.wait(job_id)
        assert first.status == again.status == "done"
        assert first.raw_run == again.raw_run
        assert [e["event"] for e in again.events] == ["started"]

    def test_sweep_job_streams_partials(self, tmp_path):
        with running_server(tmp_path) as (client, _):
            res = client.submit_sweep(REPLAY_CFG, procs=[1, 2],
                                      schemes=["distributed"])
        assert res.status == "done"
        assert [(r["procs"], r["scheme"]) for r in res.runs] == [
            (1, "distributed"), (2, "distributed")]
        partials = [e for e in res.events if e["event"] == "partial"]
        assert len(partials) == 2
        assert {p["total"] for p in partials} == {2}
        for r in res.runs:
            cfg = ExperimentConfig(
                procs_per_group=r["procs"], steps=REPLAY_CFG.steps,
                trace=REPLAY_CFG.trace)
            assert r["run"] == expected_run_dict(cfg, r["scheme"])

    def test_sequential_pseudo_scheme_job(self, tmp_path):
        cfg = ExperimentConfig(procs_per_group=1, steps=2)
        with running_server(tmp_path) as (client, _):
            res = client.submit(cfg, scheme="sequential")
        assert res.status == "done"
        assert res.raw_run == expected_run_dict(cfg, "sequential")

    def test_async_client_same_result(self, tmp_path):
        with running_server(tmp_path) as (client, server):
            async def go():
                aclient = AsyncServeClient(socket_path=client.socket_path)
                return await aclient.submit(REPLAY_CFG)

            res = asyncio.run(go())
        assert res.status == "done"
        assert res.raw_run == expected_run_dict(REPLAY_CFG)


class TestBackpressureAndFailure:
    def test_queue_full_typed_rejection(self, tmp_path):
        with running_server(tmp_path, workers=1, queue_size=2) as (client, _):
            accepted = []
            with pytest.raises(QueueFullError) as excinfo:
                for _ in range(8):
                    accepted.append(client.submit(SOLVER_CFG, wait=False,
                                                  use_cache=False))
            assert excinfo.value.code == "queue_full"
            # 1 running + 2 queued fit before the bounded queue pushed back
            assert len(accepted) == 3
            # the daemon keeps serving after the rejection
            assert client.state()["queue"]["capacity"] == 2

    def test_malformed_request_does_not_kill_server(self, tmp_path):
        with running_server(tmp_path) as (client, _):
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
                raw.settimeout(30)
                raw.connect(client.socket_path)
                stream = raw.makefile("rwb")
                stream.write(b"this is not json\n")
                stream.flush()
                reply = decode_message(stream.readline())
                assert reply["event"] == "error"
                assert reply["error"]["code"] == "malformed"
                # same connection still works afterwards
                stream.write(encode_message({"op": "state"}))
                stream.flush()
                assert decode_message(stream.readline())["event"] == "state"
            # malformed job payloads get the typed rejection, server survives
            with pytest.raises(MalformedRequestError):
                client.submit_spec(JobSpec(kind="run", config=REPLAY_CFG,
                                           scheme="no-such-scheme"))
            assert client.submit(REPLAY_CFG).status == "done"

    def test_unknown_op_and_job_id(self, tmp_path):
        with running_server(tmp_path) as (client, _):
            with pytest.raises(JobNotFoundError):
                client.wait("j9999")
            with pytest.raises(JobNotFoundError):
                client.cancel("j9999")
            with pytest.raises(MalformedRequestError):
                client._one({"op": "frobnicate"}, "never")

    def test_failing_job_reports_failed(self, tmp_path):
        bad = ExperimentConfig(
            steps=2, trace=TraceParams(source=str(tmp_path / "missing.gz")))
        with running_server(tmp_path) as (client, _):
            res = client.submit(bad, use_cache=False)
            assert res.status == "failed"
            assert res.error["code"] == "failed"
            with pytest.raises(ServeError):
                res.raise_for_status()
            # the worker slot is free again: a good job still completes
            assert client.submit(REPLAY_CFG).status == "done"

    def test_cancel_queued_job(self, tmp_path):
        with running_server(tmp_path, workers=1, queue_size=4) as (client, _):
            running = client.submit(SOLVER_CFG, wait=False, use_cache=False)
            queued = client.submit(SOLVER_CFG, wait=False, use_cache=False)
            status = client.cancel(queued)
            assert status in ("cancelled", "cancelling")
            res = client.wait(queued)
            assert res.status == "cancelled"
            assert client.wait(running).status == "done"

    def test_cancel_mid_run_frees_worker_slot(self, tmp_path):
        slow = ExperimentConfig(procs_per_group=4, steps=8)
        with running_server(tmp_path, workers=1) as (client, _):
            job_id = client.submit(slow, wait=False, use_cache=False)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                listed = {j["job_id"]: j for j in client.jobs()}
                if listed[job_id]["status"] == "running":
                    break
                time.sleep(0.05)
            else:
                pytest.fail("job never started running")
            assert client.cancel(job_id) == "cancelling"
            res = client.wait(job_id)
            assert res.status == "cancelled"
            assert res.raw_run is None
            # the freed slot runs the next job to completion
            follow = client.submit(REPLAY_CFG, use_cache=False)
            assert follow.status == "done"
            metrics = client.metrics_text()
            assert 'serve_jobs_completed_total{status="cancelled"} 1' in metrics


class TestShutdown:
    def test_draining_rejects_with_typed_error(self, tmp_path):
        with running_server(tmp_path) as (client, server):
            # flip the drain flag only (no shutdown): submissions must get
            # the 503-style typed rejection while old jobs stay queryable
            done = client.submit(REPLAY_CFG)
            server.scheduler.state.draining = True
            with pytest.raises(ShuttingDownError):
                client.submit(REPLAY_CFG)
            assert client.wait(done.job_id).status == "done"
            server.scheduler.state.draining = False
            assert client.submit(REPLAY_CFG).status == "done"

    def test_shutdown_op_drains_in_flight_jobs(self, tmp_path):
        with running_server(tmp_path, workers=2) as (client, server):
            ids = [client.submit(SOLVER_CFG, wait=False, use_cache=False),
                   client.submit(ExperimentConfig(steps=3), wait=False,
                                 use_cache=False)]
            client.shutdown()  # graceful: admitted jobs must finish
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and server._server is not None:
                time.sleep(0.05)
            for job_id in ids:
                assert server.state.get(job_id).status == "done"

    def test_forced_shutdown_cancels(self, tmp_path):
        slow = ExperimentConfig(procs_per_group=4, steps=8)
        with running_server(tmp_path, workers=1, queue_size=4) as (client, server):
            ids = [client.submit(slow, wait=False, use_cache=False)
                   for _ in range(3)]
            client.shutdown(force=True)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and server._server is not None:
                time.sleep(0.05)
            statuses = [server.state.get(job_id).status for job_id in ids]
            assert all(s == "cancelled" for s in statuses), statuses


class TestPerJobTraceTracks:
    def test_two_traced_jobs_get_distinct_tracks(self, tmp_path):
        with running_server(tmp_path, workers=2) as (client, _):
            ids = [
                client.submit(REPLAY_CFG, trace_spans=True, wait=False),
                client.submit(ExperimentConfig(procs_per_group=1, steps=2),
                              trace_spans=True, wait=False),
            ]
            for job_id in ids:
                assert client.wait(job_id).status == "done"
            trace = client.spans()
        tracks = {e["args"]["name"] for e in trace["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "process_name"}
        assert tracks == {job_track(ids[0]), job_track(ids[1])}
        assert sorted(trace["otherData"]["jobs"]) == sorted(ids)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # two jobs -> two distinct pids, every span belongs to one of them
        assert len({e["pid"] for e in spans}) == 2


# ---------------------------------------------------------------------------
# real signals, real process
# ---------------------------------------------------------------------------


def _spawn_daemon(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    sock = str(tmp_path / "daemon.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock, *extra],
        cwd=str(tmp_path), env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = proc.stdout.readline()
    assert "listening on unix socket" in line, line
    return proc, sock


class TestSignals:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc, sock = _spawn_daemon(tmp_path, "--workers", "2")
        try:
            client = ServeClient(socket_path=sock, timeout=120)
            # cold cache: guaranteed miss, and the worker stores the result
            job_id = client.submit(SOLVER_CFG, wait=False)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0
            assert "drained, exiting" in out
            assert not Path(sock).exists()
            assert "Traceback" not in out
            # the in-flight job was finished, not dropped: the worker wrote
            # its result into the shared cache before the daemon exited
            assert job_id
            assert list((tmp_path / "cache").glob("*/*.json"))
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_second_signal_force_cancels(self, tmp_path):
        proc, sock = _spawn_daemon(tmp_path, "--workers", "1")
        try:
            client = ServeClient(socket_path=sock, timeout=60)
            for _ in range(3):
                client.submit(ExperimentConfig(procs_per_group=4, steps=8),
                              wait=False, use_cache=False)
            proc.send_signal(signal.SIGINT)
            time.sleep(0.3)
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0
            assert "drained, exiting" in out
            assert "Traceback" not in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
