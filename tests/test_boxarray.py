"""Property-style equivalence of every BoxArray kernel vs the scalar Box API.

The :class:`~repro.amr.boxarray.BoxArray` batch kernels replaced per-object
``Box`` calls on every hot path of the runtime (sibling adjacency, regrid
clipping, ghost-overlap discovery, message batching).  Their contract is
*bit-for-bit equivalence*: all arithmetic is ``int64`` lattice counts, so the
batched answer must equal the scalar answer exactly -- not approximately.

Two layers of protection:

* property-style sweeps over ~1000 seeded random box pairs (including empty
  boxes, touching boxes, and separations right at the ghost width) comparing
  every kernel against its scalar reference;
* golden re-runs of the benchmark experiment under all four DLB schemes plus
  the faulted and trace record/replay variants, hashed against
  ``tests/data/golden_bench_solver.json`` (captured before the vectorized
  kernels were introduced).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_bench_solver.json"


# --------------------------------------------------------------------- #
# random box generation
# --------------------------------------------------------------------- #


def _random_boxes(rng: np.random.Generator, n: int, ndim: int) -> list:
    """Random boxes stressing the interesting regimes.

    Mix of generic boxes, empty boxes (zero extent on >= 1 axis), touching
    boxes (gap 0) and near-misses at exactly the ghost width -- the regimes
    where clamping and the ghost-separation screen must agree with the
    scalar arithmetic.
    """
    boxes = []
    for _ in range(n):
        lo = rng.integers(-8, 12, size=ndim)
        kind = rng.integers(0, 4)
        if kind == 0:  # generic
            ext = rng.integers(1, 7, size=ndim)
        elif kind == 1:  # empty on at least one axis
            ext = rng.integers(0, 4, size=ndim)
            ext[rng.integers(0, ndim)] = 0
        elif kind == 2:  # thin slabs (adjacency/touching cases)
            ext = rng.integers(1, 3, size=ndim)
        else:  # larger blocks
            ext = rng.integers(3, 10, size=ndim)
        boxes.append(Box(tuple(int(x) for x in lo), tuple(int(x) for x in lo + ext)))
    return boxes


def _pair_sets(ndim: int):
    """~1000 (a, b) box pairs per rank, seeded."""
    rng = np.random.default_rng(20010101 + ndim)
    a = _random_boxes(rng, 32, ndim)
    b = _random_boxes(rng, 32, ndim)
    # adjacency-heavy extra set: boxes laid out on a near-touching lattice
    # so gaps of exactly 0, 1 and 2 cells (the ghost regimes) are common
    c = []
    for _ in range(16):
        lo = rng.integers(0, 6, size=ndim) * 3
        ext = rng.integers(1, 4, size=ndim)
        c.append(Box(tuple(int(x) for x in lo), tuple(int(x) for x in lo + ext)))
    return a, b, c


@pytest.fixture(params=[2, 3], ids=["2d", "3d"])
def pairs(request):
    a, b, c = _pair_sets(request.param)
    return a + c, b + c  # 48 x 48 = 2304 ordered pairs per rank


# --------------------------------------------------------------------- #
# unary kernels
# --------------------------------------------------------------------- #


def test_unary_kernels_match_scalar(pairs):
    boxes, _ = pairs
    ba = BoxArray.from_boxes(boxes)
    assert len(ba) == len(boxes)
    np.testing.assert_array_equal(ba.shapes(), [b.shape for b in boxes])
    np.testing.assert_array_equal(ba.ncells(), [b.ncells for b in boxes])
    np.testing.assert_array_equal(ba.is_empty(), [b.is_empty for b in boxes])
    np.testing.assert_array_equal(
        ba.surface_cells(), [b.surface_cells() for b in boxes]
    )


def test_transforms_match_scalar(pairs):
    boxes, _ = pairs
    ba = BoxArray.from_boxes(boxes)
    for n in (1, 2):
        grown = ba.grow(n)
        for i, b in enumerate(boxes):
            g = b.grow(n)
            assert tuple(grown.lo[i]) == g.lo and tuple(grown.hi[i]) == g.hi
    for ratio in (2, 4):
        ref = ba.refine(ratio)
        coar = ba.coarsen(ratio)
        for i, b in enumerate(boxes):
            r = b.refine(ratio)
            c = b.coarsen(ratio)
            assert tuple(ref.lo[i]) == r.lo and tuple(ref.hi[i]) == r.hi
            assert tuple(coar.lo[i]) == c.lo and tuple(coar.hi[i]) == c.hi


def test_grow_negative_raises_like_scalar():
    thin = Box((0, 0, 0), (1, 5, 5))
    ba = BoxArray.from_boxes([thin])
    with pytest.raises(ValueError):
        thin.grow(-1)
    with pytest.raises(ValueError):
        ba.grow(-1)


def test_clip_matches_scalar_intersection(pairs):
    boxes, others = pairs
    bounds = Box((0,) * boxes[0].ndim, (8,) * boxes[0].ndim)
    clipped = BoxArray.from_boxes(boxes).clip(bounds)
    for i, b in enumerate(boxes):
        ref = b.intersection(bounds)
        assert tuple(clipped.lo[i]) == ref.lo
        assert tuple(clipped.hi[i]) == ref.hi


def test_elementwise_intersection_matches_scalar(pairs):
    boxes, others = pairs
    inter = BoxArray.from_boxes(boxes).intersection(BoxArray.from_boxes(others))
    for i, (a, b) in enumerate(zip(boxes, others)):
        ref = a.intersection(b)
        assert tuple(inter.lo[i]) == ref.lo
        assert tuple(inter.hi[i]) == ref.hi


# --------------------------------------------------------------------- #
# pairwise (N x M) kernels
# --------------------------------------------------------------------- #


def test_intersection_pairwise_matches_scalar(pairs):
    boxes, others = pairs
    lo, hi = BoxArray.from_boxes(boxes).intersection_pairwise(
        BoxArray.from_boxes(others)
    )
    for i, a in enumerate(boxes):
        for j, b in enumerate(others):
            ref = a.intersection(b)
            assert tuple(lo[i, j]) == ref.lo, (a, b)
            assert tuple(hi[i, j]) == ref.hi, (a, b)


def test_intersects_and_ncells_pairwise_match_scalar(pairs):
    boxes, others = pairs
    ba, bb = BoxArray.from_boxes(boxes), BoxArray.from_boxes(others)
    hits = ba.intersects_pairwise(bb)
    cells = ba.intersection_ncells_pairwise(bb)
    contains = ba.contains_pairwise(bb)
    for i, a in enumerate(boxes):
        for j, b in enumerate(others):
            assert bool(hits[i, j]) == a.intersects(b), (a, b)
            assert int(cells[i, j]) == a.intersection(b).ncells, (a, b)
            assert bool(contains[i, j]) == a.contains(b), (a, b)


@pytest.mark.parametrize("ghost", [1, 2, 3])
def test_shared_face_area_pairwise_matches_scalar(pairs, ghost):
    boxes, others = pairs
    area = BoxArray.from_boxes(boxes).shared_face_area_pairwise(
        BoxArray.from_boxes(others), ghost
    )
    for i, a in enumerate(boxes):
        for j, b in enumerate(others):
            assert int(area[i, j]) == a.shared_face_area(b, ghost), (a, b, ghost)


@pytest.mark.parametrize("ghost", [1, 2, 3])
def test_shared_face_area_pairs_matches_pairwise(pairs, ghost):
    """The screened pair-list kernel equals the full matrix on every pair --
    including the pairs its separation screen rejects without computing."""
    boxes, _ = pairs
    ba = BoxArray.from_boxes(boxes)
    n = len(ba)
    full = ba.shared_face_area_pairwise(ba, ghost)
    ia, ib = np.triu_indices(n, k=1)
    vals = ba.shared_face_area_pairs(ia, ib, ghost)
    np.testing.assert_array_equal(vals, full[ia, ib])
    # and against the scalar reference directly
    for k in range(0, len(ia), 97):
        a, b = boxes[int(ia[k])], boxes[int(ib[k])]
        assert int(vals[k]) == a.shared_face_area(b, ghost)


def test_first_overlap_pair_matches_scalar(pairs):
    """The axis-0 sweep finds an overlap exactly when the O(N^2) scalar
    double loop does, and the reported pair really intersects."""
    boxes, _ = pairs
    ba = BoxArray.from_boxes(boxes)
    scalar_any = any(
        boxes[i].intersects(boxes[j])
        for i in range(len(boxes)) for j in range(i + 1, len(boxes))
    )
    pair = ba.first_overlap_pair()
    assert (pair is not None) == scalar_any
    if pair is not None:
        i, j = pair
        assert i < j
        assert boxes[i].intersects(boxes[j])


def test_first_overlap_pair_disjoint_tiling():
    tiles = [Box((i * 4, j * 4), (i * 4 + 4, j * 4 + 4))
             for i in range(8) for j in range(8)]
    assert BoxArray.from_boxes(tiles).first_overlap_pair() is None


def test_first_overlap_pair_ignores_empty_boxes():
    boxes = [Box((0, 0), (4, 4)), Box((2, 2), (2, 6)), Box((2, 2), (2, 2))]
    assert BoxArray.from_boxes(boxes).first_overlap_pair() is None
    boxes.append(Box((3, 3), (6, 6)))
    assert BoxArray.from_boxes(boxes).first_overlap_pair() == (0, 3)


def test_first_overlap_pair_shared_slab():
    # every box shares one axis-0 interval: the sweep window is the whole
    # suffix, exercising the batched candidate path
    cols = [Box((0, k), (8, k + 1)) for k in range(64)]
    assert BoxArray.from_boxes(cols).first_overlap_pair() is None
    cols[40] = Box((0, 39), (8, 41))
    assert BoxArray.from_boxes(cols).first_overlap_pair() == (39, 40)


def test_roundtrip_and_box_accessor():
    boxes = [Box((0, 0), (2, 3)), Box((5, 5), (5, 9)), Box((-4, 1), (0, 2))]
    ba = BoxArray.from_boxes(boxes)
    assert ba.to_boxes() == boxes
    # inverted entries clamp on unpacking, like Box.intersection
    inv = BoxArray(np.array([[[3, 0], [1, 4]]]))
    assert inv.box(0) == Box((3, 0), (3, 4))


# --------------------------------------------------------------------- #
# golden re-runs: the vectorized runtime is bit-for-bit the scalar one
# --------------------------------------------------------------------- #


def _result_hash(result) -> str:
    from repro.harness.persist import run_result_to_dict

    payload = json.dumps(run_result_to_dict(result), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def bench_config(golden):
    from repro.harness import ExperimentConfig

    cfg = golden["config"]
    return ExperimentConfig(
        app_name=cfg["app"], network=cfg["network"],
        procs_per_group=cfg["procs_per_group"], steps=cfg["steps"],
        domain_cells=cfg["domain_cells"], max_levels=cfg["max_levels"],
    )


@pytest.mark.parametrize("scheme", ["diffusion", "distributed", "parallel", "static"])
def test_golden_scheme_results_unchanged(golden, bench_config, scheme):
    from repro.harness import run_experiment

    result = run_experiment(bench_config, scheme)
    assert _result_hash(result) == golden["results"][f"bench/{scheme}"], (
        f"vectorized run of scheme {scheme!r} diverged from the scalar golden"
    )


def test_golden_faulted_result_unchanged(golden, bench_config):
    from repro.config import FaultParams
    from repro.harness import run_experiment

    config = dataclasses.replace(bench_config, fault=FaultParams(scenario="slowdown"))
    result = run_experiment(config, "distributed")
    assert _result_hash(result) == golden["results"]["faulted/distributed"]


def test_golden_trace_record_replay_unchanged(golden, bench_config, tmp_path):
    from repro.traces import record_run, replay_trace, write_trace

    recorded, trace = record_run(bench_config, "distributed")
    assert _result_hash(recorded) == golden["results"]["bench/recorded"]

    replayed = replay_trace(trace, bench_config, "distributed", strict=True)
    assert _result_hash(replayed) == golden["results"]["bench/replayed"]

    trace_path = tmp_path / "golden.trace.jsonl.gz"
    write_trace(trace, trace_path)
    digest = hashlib.sha256(trace_path.read_bytes()).hexdigest()
    assert digest == golden["trace_sha256"], (
        "recorded trace bytes diverged from the scalar golden"
    )
