"""Tests for :mod:`repro.service`: the shard/replica serving simulator.

Four contracts pinned here:

* **router goldens** -- each built-in replica-selection policy allocates a
  known tick exactly as specified (rotation, inverse-priority sampling,
  EWMA warm-up then inverse-response-time apportionment);
* **schemes run unmodified** -- every registered DLB scheme works as the
  shard migration policy through its ordinary hooks;
* **paired determinism** -- same config + seed gives the bit-identical
  service report in process, across serial and parallel executors, through
  a warm cache, and under the serving daemon;
* **sweep plumbing** -- a gamma sweep over router x migration-scheme combos
  carries p50/p99/throughput/migration-cost through the executor, the
  cache and ``save_run``/``load_run`` unchanged.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.amr.box import Box
from repro.config import FaultParams, ServiceConfig
from repro.core.registry import available_schemes
from repro.exec import ExecTask, ParallelExecutor, ResultCache, SerialExecutor
from repro.harness.experiment import (
    ExperimentConfig,
    execute_scheme,
    run_experiment,
    run_sequential,
)
from repro.harness.persist import (
    load_run,
    run_result_to_dict,
    save_run,
)
from repro.serve import ServeClient, ServeError, ServeServer
from repro.service import (
    EwmaRouter,
    InversePriorityRouter,
    LatencyHistogram,
    RoundRobinRouter,
    RouterState,
    ServiceReport,
    available_arrival_presets,
    available_router_policies,
    format_service_report,
    make_arrival_model,
    make_router_policy,
    register_router_policy,
    report_hash,
    simulate_service,
)
from repro.service.arrivals import RequestArrivals, ZipfPopularity
from repro.service.shards import ShardMap, build_shard_hierarchy

#: small but non-trivial: 8 shards on 2x2 procs, ~7k requests over 30 ticks
SVC = ServiceConfig(nshards=8, shard_side=4, requests_per_second=400.0,
                    duration_seconds=30.0, balance_every_seconds=10.0)
CFG = ExperimentConfig(procs_per_group=2, steps=2, service=SVC)


def service_hash(result) -> str:
    assert result.service is not None
    return report_hash(result.service)


# ---------------------------------------------------------------------------
# config plumbing
# ---------------------------------------------------------------------------


class TestServiceConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(nshards=0),
        dict(replication=0),
        dict(shard_side=1),
        dict(requests_per_second=0.0),
        dict(service_rate=-1.0),
        dict(tick_seconds=0.0),
        dict(duration_seconds=0.0),
        dict(balance_every_seconds=0.0),
        dict(zipf_exponent=-0.1),
        dict(ewma_alpha=0.0),
        dict(ewma_alpha=1.5),
        dict(warmup_ticks=-1),
        dict(gateway_group=-1),
        dict(slo_ms=0.0),
        dict(migration_stall_ms=-1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_tick_properties(self):
        svc = ServiceConfig(duration_seconds=45.0, tick_seconds=2.0,
                            balance_every_seconds=9.0)
        assert svc.nticks == 22
        assert svc.balance_every_ticks == 4
        tiny = ServiceConfig(duration_seconds=0.1, tick_seconds=1.0,
                             balance_every_seconds=0.1)
        assert tiny.nticks == 1
        assert tiny.balance_every_ticks == 1

    def test_experiment_config_coerces_dict(self):
        cfg = ExperimentConfig(service={"nshards": 4, "shard_side": 4})
        assert isinstance(cfg.service, ServiceConfig)
        assert cfg.service.nshards == 4

    def test_service_and_trace_are_exclusive(self):
        from repro.config import TraceParams

        with pytest.raises(ValueError, match="mutually exclusive"):
            ExperimentConfig(service=SVC,
                             trace=TraceParams(source="synth:hotspot"))


# ---------------------------------------------------------------------------
# shards as grids
# ---------------------------------------------------------------------------


class TestShards:
    def test_hierarchy_geometry(self):
        h = build_shard_hierarchy(4, 8)
        grids = h.level_grids(0)
        assert len(grids) == 4
        assert all(g.ncells == 64 for g in grids)
        # strips tile [0, 32) x [0, 8) along axis 0, in order
        los = sorted(g.box.lo[0] for g in grids)
        assert los == [0, 8, 16, 24]

    def test_hierarchy_validation(self):
        with pytest.raises(ValueError):
            build_shard_hierarchy(0, 4)
        with pytest.raises(ValueError):
            build_shard_hierarchy(4, 1)

    def test_replicas_stay_in_primary_group(self):
        from repro.harness.experiment import make_system

        system = make_system(CFG)
        h = build_shard_hierarchy(8, 4)
        smap = ShardMap(h, system, replication=2)
        # place shards before reading replicas
        from repro.core.registry import make_scheme
        from repro.service.migration import MigrationEngine
        from repro.distsys.simulator import ClusterSimulator

        sim = ClusterSimulator(system)
        eng = MigrationEngine(smap, sim, make_scheme("distributed"),
                              CFG.sim_params, CFG.effective_scheme_params())
        eng.initial_placement()
        pids, mask = smap.replica_matrix()
        assert pids.shape == (8, 2)
        assert mask.all()  # both groups have >= 2 members
        groups = np.asarray(system.pid_groups)
        # replica 0 is the primary; replica 1 shares its group
        for s in range(8):
            assert pids[s, 0] == smap.assignment.pid_of(int(smap.gids[s]))
            assert groups[pids[s, 0]] == groups[pids[s, 1]]
            assert pids[s, 0] != pids[s, 1]

    def test_update_loads_sets_workloads(self):
        h = build_shard_hierarchy(3, 4)
        from repro.harness.experiment import make_system

        smap = ShardMap(h, make_system(CFG), replication=1)
        work = np.array([4.0, 0.0, 1.5])
        smap.update_loads(work)
        observed = [g.workload for g in smap.grids()]
        assert observed[0] == pytest.approx(4.0)
        assert observed[2] == pytest.approx(1.5)
        assert 0 < observed[1] < 1e-6  # idle shards keep a movable floor
        with pytest.raises(ValueError):
            smap.update_loads(np.zeros(2))


# ---------------------------------------------------------------------------
# router goldens
# ---------------------------------------------------------------------------


def _two_replica_setup(nprocs=4):
    replicas = np.array([[0, 1]], dtype=np.int64)
    mask = np.ones((1, 2), dtype=bool)
    return replicas, mask, RouterState(nprocs)


class TestRoundRobinRouter:
    def test_even_split_and_rotating_remainder(self):
        replicas, mask, state = _two_replica_setup()
        r = RoundRobinRouter()
        r.reset(4)
        counts = np.array([5], dtype=np.int64)
        first = r.route_tick(counts, replicas, mask, state)
        assert first.tolist() == [[3, 2]]
        second = r.route_tick(counts, replicas, mask, state)
        # the odd unit rotates to the other replica on the next tick
        assert second.tolist() == [[2, 3]]

    def test_masked_slots_get_nothing(self):
        replicas = np.array([[0, 1, 2]], dtype=np.int64)
        mask = np.array([[True, False, True]])
        r = RoundRobinRouter()
        r.reset(4)
        alloc = r.route_tick(np.array([4]), replicas, mask,
                             RouterState(4))
        assert alloc[0, 1] == 0
        assert alloc.sum() == 4

    def test_shard_count_change_restarts_rotation(self):
        replicas, mask, state = _two_replica_setup()
        r = RoundRobinRouter()
        r.reset(4)
        r.route_tick(np.array([5]), replicas, mask, state)
        # a split doubles the shard rows; the router must not crash
        wide = np.repeat(replicas, 2, axis=0)
        alloc = r.route_tick(np.array([5, 5]), wide,
                             np.ones((2, 2), dtype=bool), state)
        assert alloc.sum(axis=1).tolist() == [5, 5]


class TestInversePriorityRouter:
    def test_deterministic_per_seed_and_tick(self):
        replicas, mask, state = _two_replica_setup()
        counts = np.array([100], dtype=np.int64)
        a = InversePriorityRouter(seed=3).route_tick(counts, replicas, mask, state)
        b = InversePriorityRouter(seed=3).route_tick(counts, replicas, mask, state)
        assert (a == b).all()
        state.tick = 1
        c = InversePriorityRouter(seed=3).route_tick(counts, replicas, mask, state)
        assert not (a == c).all()  # new tick, new multinomial draw

    def test_prefers_shallow_queues(self):
        replicas, mask, state = _two_replica_setup()
        state.queue_depth = np.array([0.0, 99.0, 0.0, 0.0])
        alloc = InversePriorityRouter(seed=0).route_tick(
            np.array([1000]), replicas, mask, state)
        # weights 1 : 1/100 -- the empty replica takes ~99% of the tick
        assert alloc[0, 0] > 900
        assert alloc.sum() == 1000

    def test_row_sums_match_counts(self):
        replicas = np.array([[0, 1], [2, 3]], dtype=np.int64)
        mask = np.ones((2, 2), dtype=bool)
        counts = np.array([7, 0], dtype=np.int64)
        alloc = InversePriorityRouter(seed=1).route_tick(
            counts, replicas, mask, RouterState(4))
        assert alloc.sum(axis=1).tolist() == [7, 0]


class TestEwmaRouter:
    def test_warmup_splits_evenly(self):
        replicas, mask, state = _two_replica_setup()
        state.ewma_latency = np.array([1.0, 100.0, 0.0, 0.0])
        state.tick = 0
        alloc = EwmaRouter(warmup_ticks=5).route_tick(
            np.array([5]), replicas, mask, state)
        # warm-up ignores the (terrible) signal on replica 1
        assert alloc.tolist() == [[3, 2]]

    def test_post_warmup_weights_inverse_response_time(self):
        replicas, mask, state = _two_replica_setup()
        state.ewma_latency = np.array([0.1, 0.3, 0.0, 0.0])
        state.tick = 5
        alloc = EwmaRouter(warmup_ticks=5).route_tick(
            np.array([4]), replicas, mask, state)
        # inverse EWMA 10 : 10/3 -> probs 0.75 : 0.25 -> exactly [3, 1]
        assert alloc.tolist() == [[3, 1]]

    def test_no_signal_falls_back_to_even(self):
        replicas, mask, state = _two_replica_setup()
        state.tick = 10  # past warm-up, but nothing served yet
        alloc = EwmaRouter(warmup_ticks=5).route_tick(
            np.array([6]), replicas, mask, state)
        assert alloc.tolist() == [[3, 3]]

    def test_convergence_shifts_load_to_fast_replica(self):
        """Warm-up even split, then the slow replica's share decays."""
        replicas, mask, state = _two_replica_setup()
        router = EwmaRouter(warmup_ticks=3)
        counts = np.array([100], dtype=np.int64)
        alpha = 0.5
        # replica 0 answers in 10ms, replica 1 in 90ms
        per_req = np.array([0.010, 0.090])
        shares = []
        for tick in range(12):
            state.tick = tick
            alloc = router.route_tick(counts, replicas, mask, state)
            shares.append(alloc[0, 0] / counts[0])
            for p in (0, 1):
                prev = state.ewma_latency[p]
                state.ewma_latency[p] = (
                    per_req[p] if prev == 0.0
                    else (1 - alpha) * prev + alpha * per_req[p]
                )
        assert shares[0] == pytest.approx(0.5)  # warm-up
        # converged: fast replica carries ~ 90/(90+10) = 90% of the load
        assert shares[-1] == pytest.approx(0.9)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            EwmaRouter(warmup_ticks=-1)


class TestRouterRegistry:
    def test_builtins_registered(self):
        assert {"round-robin", "inverse-priority", "ewma"} <= set(
            available_router_policies())

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="available"):
            make_router_policy("no-such-router")

    def test_duplicate_requires_replace(self):
        register_router_policy("test-dummy-router",
                               lambda **kw: RoundRobinRouter(), replace=True)
        with pytest.raises(ValueError, match="replace=True"):
            register_router_policy("test-dummy-router",
                                   lambda **kw: RoundRobinRouter())
        register_router_policy("test-dummy-router",
                               lambda **kw: RoundRobinRouter(), replace=True)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            register_router_policy("", lambda **kw: RoundRobinRouter())

    @pytest.mark.parametrize("name", ["round-robin", "inverse-priority", "ewma"])
    def test_leftover_options_raise(self, name):
        with pytest.raises(TypeError):
            make_router_policy(name, bogus_option=1)

    def test_factories_tolerate_standard_options(self):
        for name in ("round-robin", "inverse-priority", "ewma"):
            policy = make_router_policy(name, seed=4, warmup_ticks=2)
            assert policy.name == name


# ---------------------------------------------------------------------------
# arrivals + popularity
# ---------------------------------------------------------------------------


class TestArrivals:
    def test_presets_listed(self):
        assert {"steady", "diurnal", "bursty", "flash-crowd",
                "composite"} <= set(available_arrival_presets())

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="available"):
            make_arrival_model("no-such-preset")

    def test_counts_deterministic(self):
        shares = np.full(4, 0.25)
        a = RequestArrivals(make_arrival_model("bursty", 3), 100.0, 1.0, seed=9)
        b = RequestArrivals(make_arrival_model("bursty", 3), 100.0, 1.0, seed=9)
        for tick in (0, 7, 31):
            assert (a.counts_for_tick(tick, shares)
                    == b.counts_for_tick(tick, shares)).all()

    def test_rate_maps_occupancy_to_saturation(self):
        from repro.distsys.traffic import MAX_OCCUPANCY

        arr = RequestArrivals(make_arrival_model("steady", 0), 950.0, 1.0)
        # the steady preset holds occupancy 0.6
        assert arr.rate(10.0) == pytest.approx(950.0 * 0.6 / MAX_OCCUPANCY)

    def test_validation(self):
        model = make_arrival_model("steady", 0)
        with pytest.raises(ValueError):
            RequestArrivals(model, 0.0, 1.0)
        with pytest.raises(ValueError):
            RequestArrivals(model, 10.0, 0.0)


class TestZipfPopularity:
    def test_shares_partition_unity(self):
        pop = ZipfPopularity((32, 4), exponent=1.1, seed=2)
        boxes = [Box((i * 4, 0), ((i + 1) * 4, 4)) for i in range(8)]
        shares = pop.shard_shares(boxes)
        assert shares.sum() == pytest.approx(1.0)
        assert (shares > 0).all()

    def test_split_conserves_share(self):
        """A split shard's halves inherit exactly the keys they cover."""
        pop = ZipfPopularity((32, 4), exponent=1.2, seed=5)
        parent = Box((8, 0), (16, 4))
        left = Box((8, 0), (12, 4))
        right = Box((12, 0), (16, 4))
        s_parent, s_left, s_right = pop.shard_shares([parent, left, right])
        assert s_left + s_right == pytest.approx(s_parent)

    def test_zero_exponent_is_uniform(self):
        pop = ZipfPopularity((16, 4), exponent=0.0, seed=0)
        boxes = [Box((i * 4, 0), ((i + 1) * 4, 4)) for i in range(4)]
        assert np.allclose(pop.shard_shares(boxes), 0.25)

    def test_seed_permutes_hotspots(self):
        a = ZipfPopularity((16, 4), seed=0)
        b = ZipfPopularity((16, 4), seed=1)
        assert not np.allclose(a.cell_weights, b.cell_weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity((16, 4), exponent=-1.0)
        with pytest.raises(ValueError):
            ZipfPopularity((0, 4))


# ---------------------------------------------------------------------------
# report + histogram
# ---------------------------------------------------------------------------


class TestLatencyHistogram:
    def test_quantiles_are_conservative_upper_edges(self):
        h = LatencyHistogram()
        h.observe_array(np.array([0.010] * 90 + [1.0] * 10))
        assert 0.010 <= h.quantile(0.5) <= 0.012  # upper edge of its bucket
        assert h.quantile(0.95) >= 1.0
        assert h.mean == pytest.approx(0.109)
        assert h.total == 100

    def test_underflow_and_overflow(self):
        h = LatencyHistogram()
        h.observe_array(np.array([1e-7]))
        assert h.quantile(0.5) == pytest.approx(float(h.edges[0]))
        h2 = LatencyHistogram()
        h2.observe_array(np.array([500.0, 700.0]))
        # overflow resolves to the exact maximum
        assert h2.quantile(0.99) == pytest.approx(700.0)

    def test_empty(self):
        h = LatencyHistogram()
        assert h.quantile(0.99) == 0.0
        assert h.mean == 0.0

    def test_roundtrip(self):
        h = LatencyHistogram()
        h.observe_array(np.array([0.01, 0.5, 3.0]))
        back = LatencyHistogram.from_dict(h.to_dict())
        assert (back.counts == h.counts).all()
        assert back.quantile(0.5) == h.quantile(0.5)
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict({"counts": [1, 2], "total": 3, "sum": 0.1})

    def test_bad_quantile_and_edges(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)
        with pytest.raises(ValueError):
            LatencyHistogram(edges=np.array([1.0, 1.0]))


class TestReportHash:
    def test_sensitive_to_any_field(self):
        r = run_experiment(CFG, "distributed")
        base = service_hash(r)
        mutated = dict(r.service)
        mutated["slo_violations"] = r.service["slo_violations"] + 1
        assert report_hash(mutated) != base

    def test_typed_view_roundtrip(self):
        r = run_experiment(CFG, "distributed")
        report = ServiceReport.from_run(r)
        assert report.to_dict() == r.service
        assert report.hash == service_hash(r)
        text = format_service_report(report)
        assert "latency p50" in text and "migrations" in text

    def test_from_run_requires_service(self):
        plain = run_experiment(ExperimentConfig(procs_per_group=1, steps=2),
                               "distributed")
        with pytest.raises(ValueError):
            ServiceReport.from_run(plain)


# ---------------------------------------------------------------------------
# the serving loop
# ---------------------------------------------------------------------------


class TestSimulateService:
    def test_paired_runs_bit_identical(self):
        a = run_experiment(CFG, "distributed")
        b = run_experiment(CFG, "distributed")
        assert a.service == b.service
        assert service_hash(a) == service_hash(b)

    def test_seed_changes_arrivals(self):
        base = run_experiment(CFG, "distributed")
        reseeded = run_experiment(CFG, "distributed", seed=7)
        assert service_hash(base) != service_hash(reseeded)

    def test_report_internally_consistent(self):
        r = run_experiment(CFG, "distributed")
        svc = r.service
        assert svc["total_requests"] > 0
        assert svc["latency"]["total"] == svc["total_requests"]
        # splits retire gids mid-run, so per-shard counts of the *final*
        # shard set bound the total from below
        per_shard_total = sum(s["requests"] for s in svc["per_shard"])
        assert 0 < per_shard_total <= svc["total_requests"]
        assert svc["throughput_rps"] == pytest.approx(
            svc["total_requests"] / svc["duration"])
        assert svc["p50"] <= svc["p95"] <= svc["p99"]
        assert svc["balance_invocations"] == 2  # ticks 10 and 20 of 30
        assert r.app == "service:flash-crowd"
        assert r.nsteps == SVC.nticks

    @pytest.mark.parametrize("scheme", available_schemes())
    def test_every_registered_scheme_runs_unmodified(self, scheme):
        r = run_experiment(CFG, scheme)
        assert r.service is not None
        assert r.service["scheme"] == r.scheme
        assert r.service["total_requests"] > 0

    def test_static_scheme_never_migrates(self):
        r = run_experiment(CFG, "static")
        assert r.service["migrations"] == 0
        assert r.service["migration_bytes"] == 0.0

    def test_routers_change_allocation_not_arrivals(self):
        results = {
            router: run_experiment(
                replace(CFG, service=replace(SVC, router=router)), "distributed")
            for router in ("round-robin", "inverse-priority", "ewma")
        }
        totals = {r.service["total_requests"] for r in results.values()}
        assert len(totals) == 1  # identical arrival stream
        hashes = {service_hash(r) for r in results.values()}
        assert len(hashes) == 3  # different replica allocations

    def test_sequential_reference_runs_on_one_proc(self):
        r = run_sequential(CFG)
        assert r.system == "1procs"
        assert r.service is not None
        # one processor serving the whole stream saturates: worse p99 than
        # the distributed run on 4 procs
        dist = run_experiment(CFG, "distributed")
        assert r.service["p99"] >= dist.service["p99"]

    def test_dropout_fault_degrades_latency(self):
        faulty = replace(CFG, fault=FaultParams(scenario="dropout", group=1,
                                                start=5.0, duration=10.0))
        clean = run_experiment(CFG, "static")
        hit = run_experiment(faulty, "static")
        # the dropout window collapses group 1's effective service rate:
        # replica queues blow up and the tail latency explodes
        assert hit.service["p99"] > clean.service["p99"]
        assert hit.service["slo_violations"] > clean.service["slo_violations"]

    def test_gateway_group_validated(self):
        bad = replace(CFG, service=replace(SVC, gateway_group=9))
        with pytest.raises(ValueError, match="gateway_group"):
            simulate_service(bad, "distributed")

    def test_missing_service_config_raises(self):
        with pytest.raises(ValueError, match="service"):
            simulate_service(ExperimentConfig(procs_per_group=1, steps=2))

    def test_migration_stall_surfaces_in_report(self):
        # drive migrations hard: skewed popularity + frequent balancing
        svc = replace(SVC, balance_every_seconds=5.0, zipf_exponent=1.4)
        r = run_experiment(replace(CFG, service=svc, gamma=0.1), "distributed")
        if r.service["migrations"]:
            assert r.service["migration_bytes"] > 0
            assert r.service["migration_stall_seconds"] > 0


# ---------------------------------------------------------------------------
# executors, cache, persistence: the sweep plumbing
# ---------------------------------------------------------------------------


class TestServiceThroughExecutors:
    def test_serial_equals_parallel(self):
        tasks = [ExecTask(CFG, "distributed"),
                 ExecTask(replace(CFG, service=replace(SVC, router="ewma")),
                          "distributed")]
        serial = SerialExecutor().run_tasks(tasks)
        parallel = ParallelExecutor(jobs=2).run_tasks(tasks)
        for s, p in zip(serial, parallel):
            assert service_hash(s) == service_hash(p)

    def test_cache_hit_is_bit_identical(self, tmp_path):
        ex = SerialExecutor(cache=ResultCache(tmp_path))
        cold = ex.run_tasks([ExecTask(CFG, "distributed")])[0]
        warm = ex.run_tasks([ExecTask(CFG, "distributed")])[0]
        assert ex.cache.hits == 1
        assert warm.service == cold.service
        assert service_hash(warm) == service_hash(cold)

    def test_router_is_part_of_the_cache_key(self, tmp_path):
        ex = SerialExecutor(cache=ResultCache(tmp_path))
        ex.run_tasks([ExecTask(CFG, "distributed")])
        other = replace(CFG, service=replace(SVC, router="ewma"))
        ex.run_tasks([ExecTask(other, "distributed")])
        assert ex.cache.hits == 0
        assert ex.cache.stores == 2

    def test_gamma_sweep_over_router_x_scheme_combos(self, tmp_path):
        """The acceptance sweep: gamma x router x migration scheme through
        the executor + cache, reports persisted and reloaded intact."""
        combos = [
            (gamma, router, scheme)
            for gamma in (0.5, 2.0)
            for router in ("round-robin", "ewma")
            for scheme in ("distributed", "sfc:morton")
        ]
        tasks = [
            ExecTask(replace(CFG, gamma=gamma,
                             service=replace(SVC, router=router)), scheme)
            for gamma, router, scheme in combos
        ]
        ex = SerialExecutor(cache=ResultCache(tmp_path))
        results = ex.run_tasks(tasks)
        assert len(results) == 8
        hashes = {}
        for (gamma, router, scheme), res in zip(combos, results):
            svc = res.service
            assert svc["router"] == router
            assert svc["p50"] <= svc["p99"]
            assert svc["throughput_rps"] > 0
            assert svc["migration_bytes"] >= 0
            hashes[(gamma, router, scheme)] = service_hash(res)
            # persistence round-trip keeps the full report
            out = tmp_path / f"{gamma}-{router}-{scheme.replace(':', '_')}.json"
            save_run(res, out)
            assert load_run(out).service == svc
        # the whole sweep replays from cache, bit-identical
        warm = ex.run_tasks(tasks)
        assert ex.cache.hits == 8
        for (combo, res) in zip(combos, warm):
            assert service_hash(res) == hashes[combo]


# ---------------------------------------------------------------------------
# the serving daemon
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def running_server(tmp_path):
    sock = str(tmp_path / "serve.sock")
    started: concurrent.futures.Future = concurrent.futures.Future()

    def body():
        async def amain():
            server = ServeServer(socket_path=sock, workers=2, queue_size=8,
                                 cache_dir=str(tmp_path / "serve_cache"))
            await server.start()
            started.set_result(server)
            await server.serve_until_shutdown()

        try:
            asyncio.run(amain())
        except BaseException as err:  # pragma: no cover - surfacing only
            if not started.done():
                started.set_exception(err)
            raise

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    started.result(timeout=30)
    client = ServeClient(socket_path=sock, timeout=300)
    try:
        yield client
    finally:
        with contextlib.suppress(OSError, ServeError):
            ServeClient(socket_path=sock, timeout=30).shutdown(force=True)
        thread.join(timeout=60)
        assert not thread.is_alive(), "daemon thread failed to drain"


class TestServiceUnderDaemon:
    def test_daemon_run_matches_in_process_bit_for_bit(self, tmp_path):
        expected = run_result_to_dict(execute_scheme(CFG, "distributed"))
        with running_server(tmp_path) as client:
            res = client.submit(CFG, scheme="distributed")
            assert res.ok and not res.cached
            assert res.raw_run["service"] == expected["service"]
            assert res.raw_run == expected
            # resubmission is served from the daemon's cache, still identical
            again = client.submit(CFG, scheme="distributed")
            assert again.cached
            assert again.raw_run["service"] == expected["service"]
