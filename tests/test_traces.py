"""The trace schema and synthetic generators: format round-trips, corrupt
inputs, generator determinism (see docs/TRACES.md)."""

import gzip
import json
from dataclasses import replace

import pytest

from repro.config import TraceParams
from repro.harness.experiment import ExperimentConfig
from repro.traces import (
    Trace,
    TraceFormatError,
    available_synth_workloads,
    generate_trace,
    make_synth_workload,
    parse_synth_source,
    read_trace,
    record_run,
    register_synth_workload,
    trace_file_hash,
    write_trace,
)
from repro.traces.schema import validate_header, validate_record
from repro.traces.synth import MovingHotspot, SyntheticWorkload, disjoint_boxes

SMALL = ExperimentConfig(procs_per_group=1, steps=2, domain_cells=16,
                         max_levels=3)


@pytest.fixture(scope="module")
def recorded():
    """One small recorded trace, shared by the whole module."""
    _, trace = record_run(SMALL, "distributed")
    return trace


class TestRoundTrip:
    def test_write_read_is_identity(self, recorded, tmp_path):
        path = tmp_path / "t.trace.jsonl.gz"
        write_trace(recorded, path)
        assert read_trace(path) == recorded

    def test_write_read_write_is_byte_identical(self, recorded, tmp_path):
        """The determinism contract: identical traces, identical bytes --
        including across a read/write cycle and across file names."""
        p1 = tmp_path / "first.trace.jsonl.gz"
        p2 = tmp_path / "second-name.trace.jsonl.gz"
        write_trace(recorded, p1)
        write_trace(read_trace(p1), p2)
        assert p1.read_bytes() == p2.read_bytes()
        assert trace_file_hash(p1) == trace_file_hash(p2)

    def test_header_carries_provenance(self, recorded):
        h = recorded.header
        assert h["app"] == "ShockPool3D"
        assert h["scheme"] == "distributed"
        assert h["nsteps"] == SMALL.steps
        assert h["config_hash"]
        assert h["salt"].startswith("repro-")

    def test_describe_mentions_the_essentials(self, recorded):
        text = recorded.describe()
        assert "ShockPool3D" in text and "2 steps" in text

    def test_default_replay_steps(self, recorded, tmp_path):
        from repro.traces import TraceFormatError, default_replay_steps

        path = tmp_path / "t.trace.jsonl.gz"
        write_trace(recorded, path)
        # file traces replay in full; synthetic sources get the harness
        # default of 4 (they have no inherent length)
        assert default_replay_steps(path) == recorded.nsteps
        assert default_replay_steps("synth:hotspot") == 4
        with pytest.raises(TraceFormatError):
            default_replay_steps(tmp_path / "missing.trace.jsonl.gz")


class TestCorruptInputs:
    def _write(self, tmp_path, lines, name="bad.trace.jsonl.gz"):
        path = tmp_path / name
        with gzip.open(path, "wt", encoding="ascii") as fh:
            for line in lines:
                fh.write(json.dumps(line) + "\n")
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            read_trace(tmp_path / "nope.trace.jsonl.gz")

    def test_not_gzip(self, tmp_path):
        path = tmp_path / "plain.trace.jsonl.gz"
        path.write_text("this is not gzip\n")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("")
        with pytest.raises(TraceFormatError, match="empty"):
            read_trace(path)

    def test_wrong_format_marker(self, tmp_path):
        path = self._write(tmp_path, [{"format": "other", "version": 1}])
        with pytest.raises(TraceFormatError, match="not a repro workload trace"):
            read_trace(path)

    def test_future_version_rejected(self, recorded, tmp_path):
        header = dict(recorded.header, version=999)
        path = self._write(tmp_path, [header])
        with pytest.raises(TraceFormatError, match="version"):
            read_trace(path)

    def test_missing_header_field(self, recorded, tmp_path):
        header = dict(recorded.header)
        del header["root_wpc"]
        path = self._write(tmp_path, [header])
        with pytest.raises(TraceFormatError, match="root_wpc"):
            read_trace(path)

    def test_truncated_body_detected(self, recorded, tmp_path):
        """Dropping records after the fact must trip the footer count."""
        good = tmp_path / "good.trace.jsonl.gz"
        write_trace(recorded, good)
        with gzip.open(good, "rt", encoding="ascii") as fh:
            lines = fh.read().splitlines()
        clipped = lines[:5] + [lines[-1]]  # keep header + footer
        bad = tmp_path / "clipped.trace.jsonl.gz"
        with gzip.open(bad, "wt", encoding="ascii") as fh:
            fh.write("\n".join(clipped) + "\n")
        with pytest.raises(TraceFormatError, match="truncated"):
            read_trace(bad)

    def test_missing_footer_detected(self, recorded, tmp_path):
        path = self._write(tmp_path,
                           [recorded.header] + recorded.records[:3])
        with pytest.raises(TraceFormatError, match="footer"):
            read_trace(path)

    def test_truncated_gzip_stream(self, recorded, tmp_path):
        good = tmp_path / "good.trace.jsonl.gz"
        write_trace(recorded, good)
        data = good.read_bytes()
        bad = tmp_path / "cut.trace.jsonl.gz"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            read_trace(bad)

    def test_invalid_json_line(self, recorded, tmp_path):
        good = tmp_path / "good.trace.jsonl.gz"
        write_trace(recorded, good)
        with gzip.open(good, "rt", encoding="ascii") as fh:
            lines = fh.read().splitlines()
        lines[2] = "{not json"
        bad = tmp_path / "badjson.trace.jsonl.gz"
        with gzip.open(bad, "wt", encoding="ascii") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            read_trace(bad)

    def test_unknown_record_op(self):
        with pytest.raises(TraceFormatError, match="unknown op"):
            validate_record({"op": "teleport"}, 0)

    def test_record_missing_field(self):
        with pytest.raises(TraceFormatError, match="missing field"):
            validate_record({"op": "solve", "l": 0}, 3)

    def test_bool_header_field_rejected(self, recorded):
        header = dict(recorded.header, nsteps=True)
        with pytest.raises(TraceFormatError, match="wrong type"):
            validate_header(header)

    def test_write_validates(self, recorded, tmp_path):
        broken = Trace(header=dict(recorded.header),
                       records=[{"op": "nope"}])
        with pytest.raises(TraceFormatError):
            write_trace(broken, tmp_path / "x.trace.jsonl.gz")


class TestTraceParams:
    def test_requires_source(self):
        with pytest.raises(ValueError, match="source"):
            TraceParams()

    def test_rejects_bare_synth_prefix(self):
        with pytest.raises(ValueError, match="empty synthetic"):
            TraceParams(source="synth:")

    def test_rejects_nonpositive_intensity(self):
        with pytest.raises(ValueError, match="intensity"):
            TraceParams(source="synth:hotspot", intensity=0.0)

    def test_is_synthetic(self):
        assert TraceParams(source="synth:hotspot").is_synthetic
        assert not TraceParams(source="run.trace.jsonl.gz").is_synthetic


class TestSynthRegistry:
    def test_builtins_registered(self):
        names = available_synth_workloads()
        assert {"hotspot", "bursty", "adversarial"} <= set(names)

    def test_make_unknown_raises(self):
        with pytest.raises(ValueError, match="registered"):
            make_synth_workload("warpdrive")

    def test_parse_synth_source(self):
        assert parse_synth_source("synth:hotspot") == "hotspot"
        assert parse_synth_source("some/file.trace.jsonl.gz") is None
        with pytest.raises(ValueError):
            parse_synth_source("synth:")

    def test_register_custom(self):
        class Blob(SyntheticWorkload):
            name = "test-blob"

            def cluster_boxes(self, coarse_level, time):
                return [self._frac_box([0.2] * 3, [0.6] * 3, coarse_level)]

        register_synth_workload(Blob)
        try:
            assert "test-blob" in available_synth_workloads()
            trace = generate_trace(make_synth_workload("test-blob"),
                                   steps=2, nprocs=2)
            assert trace.app == "synth:test-blob"
            assert trace.nsteps == 2
        finally:
            from repro.traces.synth import _SYNTH

            del _SYNTH["test-blob"]

    def test_register_rejects_default_name(self):
        with pytest.raises(ValueError, match="non-default name"):
            register_synth_workload(SyntheticWorkload)


class TestSynthGenerators:
    @pytest.mark.parametrize("name", ["hotspot", "bursty", "adversarial"])
    def test_deterministic(self, name):
        mk = lambda: make_synth_workload(name, domain_cells=16, max_levels=3,
                                         seed=11)
        assert (generate_trace(mk(), steps=3, nprocs=4)
                == generate_trace(mk(), steps=3, nprocs=4))

    @pytest.mark.parametrize("name", ["hotspot", "bursty", "adversarial"])
    def test_seed_changes_trace(self, name):
        a = generate_trace(make_synth_workload(name, seed=1), steps=3, nprocs=4)
        b = generate_trace(make_synth_workload(name, seed=2), steps=3, nprocs=4)
        if name == "adversarial":  # seed-free by design (worst case is fixed)
            assert a.records == b.records
        else:
            assert a.records != b.records

    def test_generated_trace_round_trips(self, tmp_path):
        trace = generate_trace(MovingHotspot(seed=5), steps=2, nprocs=4)
        path = tmp_path / "synth.trace.jsonl.gz"
        write_trace(trace, path)
        assert read_trace(path) == trace

    def test_header_marks_synthetic(self):
        trace = generate_trace(MovingHotspot(), steps=2, nprocs=2)
        assert trace.app == "synth:hotspot"
        assert trace.scheme == "synth"
        assert trace.header["config"] is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingHotspot(domain_cells=2)
        with pytest.raises(ValueError):
            MovingHotspot(intensity=0)
        with pytest.raises(ValueError):
            generate_trace(MovingHotspot(), steps=0, nprocs=2)

    def test_disjoint_boxes(self):
        from repro.amr.box import Box

        a = Box((0, 0, 0), (4, 4, 4))
        b = Box((2, 2, 2), (6, 6, 6))
        out = disjoint_boxes([a, b])
        assert sum(x.ncells for x in out) == a.ncells + b.ncells - 2**3
        for i, x in enumerate(out):
            for y in out[i + 1:]:
                assert not x.intersects(y)


class TestRecordRun:
    def test_recording_does_not_perturb_the_run(self):
        from repro.harness.experiment import run_experiment
        from repro.harness.persist import run_result_to_dict

        base = run_experiment(SMALL, "distributed")
        result, _ = record_run(SMALL, "distributed")
        assert run_result_to_dict(result) == run_result_to_dict(base)

    def test_rejects_replay_config(self):
        cfg = replace(SMALL, trace=TraceParams(source="synth:hotspot"))
        with pytest.raises(ValueError, match="record a replayed run"):
            record_run(cfg, "distributed")

    def test_writes_file(self, tmp_path):
        out = tmp_path / "r.trace.jsonl.gz"
        _, trace = record_run(SMALL, "parallel", out=out)
        assert out.is_file()
        assert read_trace(out) == trace
