"""Unit tests for configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import SchemeParams, SimParams


class TestSimParams:
    def test_defaults_valid(self):
        p = SimParams()
        assert p.bytes_per_cell > 0
        assert p.ghost_width >= 0

    def test_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            SimParams().bytes_per_cell = 1.0

    @pytest.mark.parametrize(
        "kw",
        [
            {"bytes_per_cell": 0},
            {"ghost_width": -1},
            {"parent_child_factor": -0.5},
            {"repartition_fixed_seconds": -1},
            {"repartition_seconds_per_grid": -1},
            {"regrid_seconds_per_grid": -1},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            SimParams(**kw)


class TestSchemeParams:
    def test_paper_default_gamma(self):
        """'gamma is a user-defined parameter (default is 2.0)'."""
        assert SchemeParams().gamma == 2.0

    @pytest.mark.parametrize(
        "kw",
        [
            {"gamma": -1},
            {"imbalance_threshold": 0.9},
            {"local_tolerance": 0.0},
            {"local_tolerance": 1.0},
            {"max_local_moves": 0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            SchemeParams(**kw)
