"""Tests for the fault-injection subsystem (``repro.faults``)."""

from __future__ import annotations

import math

import pytest

from repro.amr.applications import ShockPool3D
from repro.config import FaultParams
from repro.core import DistributedDLB, ParallelDLB
from repro.distsys import ConstantTraffic, FaultEvent, wan_system
from repro.distsys.events import ComputeEvent, EventLog, RedistributionEvent
from repro.faults import (
    MAX_CPU_OCCUPANCY,
    BurstyLoad,
    ComposedLoad,
    ConstantLoad,
    CpuLoadFault,
    DiurnalLoad,
    DropoutFault,
    FaultSchedule,
    LinkDegradationFault,
    NoLoad,
    SlowdownFault,
    TraceLoad,
    WindowLoad,
    imbalance_trajectory,
    lost_compute_time,
    peak_imbalance,
    resilience_report,
    time_to_rebalance,
)
from repro.harness import ExperimentConfig, make_faults, run_experiment
from repro.runtime import SAMRRunner


# --------------------------------------------------------------------- #
# load models
# --------------------------------------------------------------------- #


class TestLoadModels:
    def test_no_load_is_zero(self):
        assert NoLoad().occupancy(0.0) == 0.0
        assert NoLoad().occupancy(1e6) == 0.0

    def test_constant_load(self):
        assert ConstantLoad(0.4).occupancy(123.0) == 0.4
        with pytest.raises(ValueError):
            ConstantLoad(1.5)

    def test_diurnal_oscillates_and_clamps(self):
        m = DiurnalLoad(mean=0.5, amplitude=0.6, period=100.0)
        vals = [m.occupancy(t) for t in range(0, 100, 5)]
        assert max(vals) <= MAX_CPU_OCCUPANCY
        assert min(vals) >= 0.0
        assert max(vals) > min(vals)

    def test_bursty_deterministic_and_seed_sensitive(self):
        a = BurstyLoad(seed=1, bucket_seconds=10.0)
        b = BurstyLoad(seed=1, bucket_seconds=10.0)
        c = BurstyLoad(seed=2, bucket_seconds=10.0)
        ts = [0.5, 15.0, 25.0, 999.0]
        assert [a.occupancy(t) for t in ts] == [b.occupancy(t) for t in ts]
        assert any(
            a.occupancy(t) != c.occupancy(t) for t in range(0, 2000, 10)
        )

    def test_bursty_constant_within_bucket(self):
        m = BurstyLoad(seed=3, bucket_seconds=10.0)
        assert m.occupancy(20.0) == m.occupancy(29.999)

    def test_window_load_boundaries(self):
        w = WindowLoad(10.0, 20.0, 0.75)
        assert w.occupancy(9.999) == 0.0
        assert w.occupancy(10.0) == 0.75
        assert w.occupancy(19.999) == 0.75
        assert w.occupancy(20.0) == 0.0
        with pytest.raises(ValueError):
            WindowLoad(20.0, 10.0, 0.5)

    def test_trace_load_steps(self):
        tr = TraceLoad([0.0, 10.0, 20.0], [0.1, 0.5, 0.2])
        assert tr.occupancy(0.0) == 0.1
        assert tr.occupancy(9.9) == 0.1
        assert tr.occupancy(10.0) == 0.5
        assert tr.occupancy(1e9) == 0.2
        with pytest.raises(ValueError):
            TraceLoad([5.0], [0.1])  # must start at or before t=0
        with pytest.raises(ValueError):
            TraceLoad([0.0, 0.0], [0.1, 0.2])

    def test_composed_load_sums_and_clamps(self):
        m = ComposedLoad((ConstantLoad(0.3), WindowLoad(0.0, 10.0, 0.2)))
        assert m.occupancy(5.0) == pytest.approx(0.5)
        assert m.occupancy(15.0) == pytest.approx(0.3)
        big = ComposedLoad((ConstantLoad(0.9), ConstantLoad(0.9)))
        assert big.occupancy(0.0) == MAX_CPU_OCCUPANCY


# --------------------------------------------------------------------- #
# processor availability
# --------------------------------------------------------------------- #


class TestProcessorAvailability:
    def test_loaded_processor_slows_down(self):
        system = wan_system(2, ConstantTraffic(0.0), base_speed=1000.0)
        proc = system.processors[0]
        from dataclasses import replace

        loaded = replace(proc, load=WindowLoad(10.0, 20.0, 0.75))
        assert loaded.effective_speed(0.0) == pytest.approx(proc.speed)
        assert loaded.effective_speed(15.0) == pytest.approx(proc.speed * 0.25)
        # 4x slower inside the window
        assert loaded.execution_time(100.0, 15.0) == pytest.approx(
            4.0 * loaded.execution_time(100.0, 0.0)
        )

    def test_group_capacity_tracks_time(self):
        system = wan_system(2, ConstantTraffic(0.0), base_speed=1000.0)
        sched = FaultSchedule(
            [SlowdownFault(group=1, start=10.0, end=20.0, factor=4.0)]
        )
        faulted = sched.apply(system)
        g0, g1 = faulted.groups
        assert g1.capacity_at(0.0) == pytest.approx(g1.capacity)
        assert g1.capacity_at(15.0) == pytest.approx(g1.capacity / 4.0)
        assert g0.capacity_at(15.0) == pytest.approx(g0.capacity)
        assert faulted.capacity_fraction_at(1, 15.0) < 0.25


# --------------------------------------------------------------------- #
# schedules
# --------------------------------------------------------------------- #


class TestFaultSchedule:
    def test_apply_targets_only_matching_processors(self):
        system = wan_system(2, ConstantTraffic(0.0), base_speed=1000.0)
        sched = FaultSchedule([SlowdownFault(pids=(0,), start=0.0, end=5.0)])
        faulted = sched.apply(system)
        assert faulted.processor(0).availability(1.0) < 1.0
        for pid in (1, 2, 3):
            assert faulted.processor(pid).availability(1.0) == 1.0
        # the input system is untouched
        assert system.processor(0).availability(1.0) == 1.0

    def test_apply_composes_with_existing_load(self):
        from dataclasses import replace

        system = wan_system(1, ConstantTraffic(0.0), base_speed=1000.0)
        g0 = system.groups[0]
        preloaded = replace(g0.processors[0], load=ConstantLoad(0.2))
        from repro.distsys.group import Group
        from repro.distsys.system import DistributedSystem

        system = DistributedSystem(
            [
                Group(0, g0.name, [preloaded], intra_link=g0.intra_link),
                system.groups[1],
            ],
            system.inter_links,
        )
        sched = FaultSchedule([SlowdownFault(pids=(0,), start=0.0, end=5.0, factor=2.0)])
        faulted = sched.apply(system)
        # 0.2 existing + 0.5 slowdown
        assert faulted.processor(0).availability(1.0) == pytest.approx(0.3)
        assert faulted.processor(0).availability(10.0) == pytest.approx(0.8)

    def test_dropout_floors_availability(self):
        system = wan_system(1, ConstantTraffic(0.0), base_speed=1000.0)
        faulted = FaultSchedule(
            [DropoutFault(group=0, start=0.0, end=5.0)]
        ).apply(system)
        p = faulted.processor(0)
        assert p.availability(1.0) == pytest.approx(1.0 - MAX_CPU_OCCUPANCY)
        assert p.availability(6.0) == 1.0

    def test_link_fault_overlays_inter_links(self):
        system = wan_system(1, ConstantTraffic(0.1), base_speed=1000.0)
        faulted = FaultSchedule(
            [LinkDegradationFault(start=0.0, end=5.0, occupancy=0.6)]
        ).apply(system)
        link = faulted.link_between(0, 1)
        assert link.traffic.occupancy(1.0) == pytest.approx(0.7)
        assert link.traffic.occupancy(6.0) == pytest.approx(0.1)
        # intra-group links untouched
        assert faulted.groups[0].intra_link.traffic.occupancy(1.0) == 0.0

    def test_boundaries_sorted_with_ends(self):
        sched = FaultSchedule(
            [
                SlowdownFault(group=1, start=10.0, end=20.0),
                CpuLoadFault(group=0, model=ConstantLoad(0.1)),
                LinkDegradationFault(start=5.0, end=math.inf, occupancy=0.5),
            ]
        )
        bs = sched.boundaries()
        assert [b.time for b in bs] == [0.0, 5.0, 10.0, 20.0]
        assert [b.phase for b in bs] == ["start", "start", "start", "end"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowdownFault(group=1, start=5.0, end=5.0)
        with pytest.raises(ValueError):
            SlowdownFault(group=1, factor=1.0)
        with pytest.raises(ValueError):
            SlowdownFault(pids=(0,), group=1)
        with pytest.raises(ValueError):
            LinkDegradationFault(groups=(1, 1))
        with pytest.raises(TypeError):
            FaultSchedule(["not a fault"])


# --------------------------------------------------------------------- #
# FaultParams and the harness factory
# --------------------------------------------------------------------- #


class TestFaultParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultParams(scenario="meteor")
        with pytest.raises(ValueError):
            FaultParams(severity=1.0)
        with pytest.raises(ValueError):
            FaultParams(duration=0.0)
        fp = FaultParams(scenario="slowdown", start=2.0, duration=6.0, severity=4.0)
        assert fp.end == 8.0
        assert fp.stolen_share == pytest.approx(0.75)

    def test_make_faults_vocabulary(self):
        for scenario, expected_kinds in (
            ("slowdown", {"slowdown"}),
            ("dropout", {"dropout"}),
            ("cpu-load", {"cpu-load"}),
            ("link-degraded", {"link"}),
            ("mixed", {"slowdown", "link", "cpu-load"}),
        ):
            cfg = ExperimentConfig(fault=FaultParams(scenario=scenario))
            sched = make_faults(cfg)
            assert sched is not None
            assert {f.kind for f in sched.faults} == expected_kinds

    def test_make_faults_none(self):
        assert make_faults(ExperimentConfig()) is None
        assert make_faults(ExperimentConfig(fault=FaultParams())) is None


# --------------------------------------------------------------------- #
# runner integration
# --------------------------------------------------------------------- #


def faulted_runner(scheme, sched, steps=4):
    app = ShockPool3D(domain_cells=16, max_levels=3)
    system = wan_system(2, ConstantTraffic(0.3), base_speed=2e4)
    runner = SAMRRunner(app, system, scheme, fault_schedule=sched)
    if steps:
        runner.run(steps)
    return runner


class TestRunnerIntegration:
    def test_fault_events_logged_in_order(self):
        sched = FaultSchedule(
            [SlowdownFault(group=1, start=2.0, end=8.0, factor=4.0)]
        )
        runner = faulted_runner(DistributedDLB(), sched)
        events = runner.sim.log.of_type(FaultEvent)
        assert [e.phase for e in events] == ["start", "end"]
        assert events[0].time == 2.0 and events[1].time == 8.0
        assert "slowdown" in events[0].description

    def test_result_counts_faults_and_labels_groups(self):
        sched = FaultSchedule(
            [SlowdownFault(group=1, start=2.0, end=8.0, factor=4.0)]
        )
        runner = faulted_runner(ParallelDLB(), sched)
        result = runner.result()
        assert result.faults == 2
        assert result.system == "2+2procs"

    def test_fault_slows_the_run(self):
        sched = FaultSchedule(
            [SlowdownFault(group=1, start=2.0, end=8.0, factor=4.0)]
        )
        clean = faulted_runner(ParallelDLB(), None).result()
        faulted = faulted_runner(ParallelDLB(), sched).result()
        assert faulted.total_time > clean.total_time

    def test_deterministic_repeats(self):
        cfg = ExperimentConfig(
            steps=3, fault=FaultParams(scenario="cpu-load", seed=5)
        )
        a = run_experiment(cfg, "distributed")
        b = run_experiment(cfg, "distributed")
        assert a.total_time == b.total_time
        assert a.redistributions == b.redistributions

    def test_ideal_elapsed_recorded(self):
        runner = faulted_runner(DistributedDLB(), None, steps=2)
        phases = [
            e for e in runner.sim.log.of_type(ComputeEvent) if e.elapsed > 0
        ]
        assert phases
        for e in phases:
            assert 0.0 < e.ideal_elapsed <= e.elapsed + 1e-12


# --------------------------------------------------------------------- #
# resilience metrics
# --------------------------------------------------------------------- #


class TestResilienceMetrics:
    def make_log(self):
        log = EventLog()
        log.record(ComputeEvent(time=1.0, level=0, seq=0, elapsed=1.0,
                                max_load=1.0, total_load=4.0,
                                ideal_elapsed=1.0))
        log.record(FaultEvent(time=2.0, kind="slowdown", phase="start",
                              description="4x slowdown of group 1"))
        log.record(ComputeEvent(time=5.0, level=0, seq=1, elapsed=4.0,
                                max_load=4.0, total_load=8.0,
                                ideal_elapsed=2.0))
        log.record(RedistributionEvent(time=6.0, moved_cells=100,
                                       moved_grids=2, elapsed=0.5,
                                       predicted_cost=0.2))
        log.record(FaultEvent(time=8.0, kind="slowdown", phase="end",
                              description="4x slowdown of group 1"))
        log.record(ComputeEvent(time=9.0, level=0, seq=2, elapsed=1.1,
                                max_load=1.1, total_load=4.0,
                                ideal_elapsed=1.0))
        return log

    def test_imbalance_trajectory(self):
        traj = imbalance_trajectory(self.make_log())
        assert [t for t, _ in traj] == [1.0, 5.0, 9.0]
        assert traj[1][1] == pytest.approx(2.0)
        assert peak_imbalance(self.make_log()) == pytest.approx(2.0)

    def test_lost_time(self):
        assert lost_compute_time(self.make_log()) == pytest.approx(2.1)

    def test_time_to_rebalance_only_counts_onsets(self):
        ttr = time_to_rebalance(self.make_log())
        assert ttr == {2.0: pytest.approx(4.0)}

    def test_report_summary(self):
        rep = resilience_report(self.make_log())
        assert rep.fault_onsets == 1
        assert rep.rebalances == 1
        assert rep.mean_time_to_rebalance == pytest.approx(4.0)
        assert rep.total_time == 9.0
        assert "rebalances 1" in rep.summary()

    def test_report_without_faults(self):
        log = EventLog()
        log.record(ComputeEvent(time=1.0, level=0, seq=0, elapsed=1.0,
                                max_load=1.0, total_load=4.0,
                                ideal_elapsed=1.0))
        rep = resilience_report(log)
        assert rep.fault_onsets == 0
        assert rep.mean_time_to_rebalance is None
        assert rep.lost_fraction == 0.0


# --------------------------------------------------------------------- #
# adaptation: the headline behaviour
# --------------------------------------------------------------------- #


class TestAdaptation:
    def test_distributed_beats_parallel_under_slowdown(self):
        """A mid-run 4x slowdown of one group: the weight-re-measuring
        distributed scheme shifts work away and wins; the blind parallel
        baseline just waits on the stragglers."""
        cfg = ExperimentConfig(
            procs_per_group=2,
            steps=6,
            fault=FaultParams(scenario="slowdown", group=1,
                              start=2.0, duration=6.0, severity=4.0),
        )
        par = run_experiment(cfg, "parallel")
        dist = run_experiment(cfg, "distributed")
        assert dist.total_time < par.total_time
        # the scheme reacted after the onset
        rep = resilience_report(dist.events)
        assert rep.mean_time_to_rebalance is not None
