"""Space-filling-curve partitioning: keys, cuts, policies (``repro.partition.sfc``).

Three layers of guarantees:

* the curve kernels are exact bijections (encode/decode round-trips, full
  lattice coverage) and the Hilbert curve has its defining locality property
  (consecutive keys are face-adjacent lattice cells);
* :func:`contiguous_segments` cuts a curve-ordered weight sequence into
  contiguous, capacity-proportional segments -- including heterogeneous
  processor speeds (Eq. 5's proportional split along a different ordering);
* the registered ``sfc:morton`` / ``sfc:hilbert`` schemes distribute work
  capacity-proportionally across groups and run end-to-end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.hierarchy import GridHierarchy
from repro.config import SchemeParams, SimParams
from repro.core.base import BalanceContext
from repro.core.gain import WorkloadHistory
from repro.core.policies import NominalWeights, SFCLocal, SFCPartition
from repro.core.registry import make_scheme
from repro.distsys import ClusterSimulator, GroupSpec, SystemSpec, build_system
from repro.harness import ExperimentConfig, run_experiment
from repro.partition import GridAssignment
from repro.partition.sfc import (
    CURVES,
    box_centroid_keys,
    contiguous_segments,
    curve_bits,
    curve_key,
    grids_curve_order,
    hilbert_decode,
    hilbert_key,
    morton_decode,
    morton_key,
)
from repro.runtime import root_blocks


def full_lattice(ndim: int, nbits: int) -> np.ndarray:
    """Every lattice point of the ``(2**nbits)**ndim`` cube, row-major."""
    side = 1 << nbits
    grids = np.meshgrid(*([np.arange(side)] * ndim), indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


class TestCurveKernels:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    @pytest.mark.parametrize("nbits", [1, 2, 3, 4])
    @pytest.mark.parametrize("curve", CURVES)
    def test_round_trip_random(self, ndim, nbits, curve, seed=7):
        rng = np.random.default_rng(seed + ndim + nbits)
        coords = rng.integers(0, 1 << nbits, size=(64, ndim))
        keys = curve_key(coords, nbits, curve)
        decode = morton_decode if curve == "morton" else hilbert_decode
        np.testing.assert_array_equal(decode(keys, ndim, nbits), coords)

    @pytest.mark.parametrize("ndim,nbits", [(1, 4), (2, 3), (3, 2)])
    @pytest.mark.parametrize("curve", CURVES)
    def test_bijection_on_full_lattice(self, ndim, nbits, curve):
        keys = curve_key(full_lattice(ndim, nbits), nbits, curve)
        expected = np.arange(1 << (nbits * ndim))
        np.testing.assert_array_equal(np.sort(keys), expected)

    @pytest.mark.parametrize("ndim,nbits", [(2, 3), (3, 2), (3, 3)])
    def test_hilbert_consecutive_keys_are_face_adjacent(self, ndim, nbits):
        nkeys = 1 << (nbits * ndim)
        coords = hilbert_decode(np.arange(nkeys), ndim, nbits)
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_morton_locality_is_weaker_than_hilbert(self):
        # same full 2-d lattice: the Z-curve takes long diagonal jumps the
        # Hilbert curve never does
        nkeys = 1 << (2 * 3)
        morton_steps = np.abs(
            np.diff(morton_decode(np.arange(nkeys), 2, 3), axis=0)).sum(axis=1)
        assert morton_steps.max() > 1
        assert morton_steps.mean() > 1.0

    def test_axis0_is_most_significant(self):
        keys = morton_key(np.array([[1, 0], [0, 1]]), 1)
        assert keys[0] > keys[1]

    def test_rejects_negative_coordinates(self):
        with pytest.raises(ValueError, match="range|non-negative"):
            morton_key(np.array([[-1, 0]]), 2)

    def test_rejects_out_of_range_coordinates(self):
        with pytest.raises(ValueError, match="range"):
            hilbert_key(np.array([[4, 0]]), 2)

    def test_rejects_key_overflow(self):
        with pytest.raises(ValueError, match="62"):
            morton_key(np.zeros((1, 3), dtype=np.int64), 21)

    def test_unknown_curve_rejected(self):
        with pytest.raises(ValueError, match="peano"):
            curve_key(np.zeros((1, 2), dtype=np.int64), 1, "peano")

    def test_curve_bits(self):
        assert curve_bits(np.array([[0, 0]])) == 1
        assert curve_bits(np.array([[0, 7]])) == 3
        assert curve_bits(np.array([[0, 8]])) == 4

    def test_empty_batch(self):
        for curve in CURVES:
            assert curve_key(np.zeros((0, 3), dtype=np.int64), 4, curve).size == 0


class TestCentroidKeys:
    def test_translation_invariant(self):
        boxes = [Box((i * 4, 0, 0), (i * 4 + 4, 4, 4)) for i in range(4)]
        shifted = [Box((i * 4 + 32, 16, 8), (i * 4 + 36, 20, 12)) for i in range(4)]
        for curve in CURVES:
            np.testing.assert_array_equal(
                box_centroid_keys(BoxArray.from_boxes(boxes), curve),
                box_centroid_keys(BoxArray.from_boxes(shifted), curve),
            )

    def test_grids_curve_order_ties_break_by_gid(self):
        domain = Box.cube(0, 8, 3)
        h = GridHierarchy(domain, 2, 2)
        roots = h.create_root_grids(root_blocks(domain, (2, 1, 1)))
        # duplicate centroids cannot happen at level 0; check determinism
        # of the order itself instead
        for curve in CURVES:
            order = grids_curve_order(roots, curve)
            np.testing.assert_array_equal(order, grids_curve_order(roots, curve))


class TestContiguousSegments:
    def test_even_cut(self):
        owners = contiguous_segments([1.0] * 8, [4.0, 4.0])
        np.testing.assert_array_equal(owners, [0, 0, 0, 0, 1, 1, 1, 1])

    def test_proportional_cut_heterogeneous_targets(self):
        # capacities 1:3 over uniform items: the fast segment gets ~3/4
        owners = contiguous_segments([1.0] * 8, [2.0, 6.0])
        np.testing.assert_array_equal(owners, [0, 0, 1, 1, 1, 1, 1, 1])

    def test_midpoint_straddle_rule(self):
        # the third item (weight 2) overlaps the boundary at 4 by exactly
        # half; the midpoint rule sends it right
        owners = contiguous_segments([3.0, 2.0, 3.0], [4.0, 4.0])
        np.testing.assert_array_equal(owners, [0, 1, 1])

    def test_contiguity_and_range(self):
        rng = np.random.default_rng(3)
        weights = rng.random(50)
        targets = [weights.sum() / 3] * 3
        owners = contiguous_segments(weights, targets)
        assert (np.diff(owners) >= 0).all()
        assert owners.min() >= 0 and owners.max() <= 2

    def test_more_segments_than_items_stays_in_range(self):
        owners = contiguous_segments([1.0, 1.0], [0.5] * 4)
        assert owners.max() <= 3

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            contiguous_segments([1.0], [])


def make_sfc_ctx(group_weights=(1.0, 1.0), n=16, blocks=(8, 1, 1)):
    """A fresh 2-group context with unassigned root grids."""
    domain = Box.cube(0, n, 3)
    h = GridHierarchy(domain, 2, 3)
    h.create_root_grids(root_blocks(domain, blocks))
    spec = SystemSpec(
        groups=tuple(GroupSpec(nprocs=2, weight=w) for w in group_weights),
        base_speed=2e4,
    )
    system = build_system(spec)
    ctx = BalanceContext(
        hierarchy=h, assignment=GridAssignment(h, system), system=system,
        sim=ClusterSimulator(system),
        sim_params=SimParams(), scheme_params=SchemeParams(),
        history=WorkloadHistory(),
    )
    return ctx


class TestSFCPolicies:
    @pytest.mark.parametrize("curve", CURVES)
    def test_initial_distribution_is_capacity_proportional(self, curve):
        # group weights 1:3 -> the heavy group should own ~3/4 of the work
        ctx = make_sfc_ctx(group_weights=(1.0, 3.0))
        SFCPartition(curve).initial_distribution(ctx, NominalWeights())
        loads = {0: 0.0, 1: 0.0}
        for g in ctx.hierarchy.level_grids(0):
            loads[ctx.assignment.group_of(g.gid)] += g.workload
        total = sum(loads.values())
        assert loads[1] / total == pytest.approx(0.75, abs=0.13)

    @pytest.mark.parametrize("curve", CURVES)
    def test_segments_are_curve_contiguous(self, curve):
        ctx = make_sfc_ctx()
        SFCPartition(curve).initial_distribution(ctx, NominalWeights())
        grids = ctx.hierarchy.level_grids(0)
        order = grids_curve_order(grids, curve)
        owners = [ctx.assignment.group_of(grids[i].gid) for i in order]
        # group ids along the curve never revisit an earlier group
        assert owners == sorted(owners)

    def test_plan_moves_only_group_changers(self):
        ctx = make_sfc_ctx()
        part = SFCPartition("morton")
        part.initial_distribution(ctx, NominalWeights())
        plan = part.plan(ctx, time=None)
        # freshly balanced: re-cutting the same curve plans no moves
        assert plan.empty

    def test_unknown_curve_rejected(self):
        with pytest.raises(ValueError, match="zigzag"):
            SFCPartition("zigzag")
        with pytest.raises(ValueError, match="zigzag"):
            SFCLocal("zigzag")

    @pytest.mark.parametrize("scheme", ["sfc:morton", "sfc:hilbert"])
    def test_registered_scheme_runs_end_to_end(self, scheme):
        cfg = ExperimentConfig(procs_per_group=2, steps=2)
        result = run_experiment(cfg, scheme)
        assert result.total_time > 0
        assert make_scheme(scheme).spec.global_partition == "sfc"
