"""Unit tests for the paper's Eq. 1 (cost), Eqs. 2-4 (gain) and the gate."""

from __future__ import annotations

import pytest

from repro.core.cost import CostEstimate, CostModel
from repro.core.decision import decide
from repro.core.gain import CoarseStepRecord, WorkloadHistory, estimate_gain
from repro.distsys import ConstantTraffic, wan_system


class TestCostModel:
    def test_eq1_structure(self):
        model = CostModel(initial_delta=0.1)
        est = model.estimate(alpha=0.01, beta=1e-6, migrate_bytes=1e6)
        assert est.communication == pytest.approx(0.01 + 1.0)
        assert est.total == pytest.approx(0.01 + 1.0 + 0.1)

    def test_delta_updates_from_history(self):
        """'recording the computational overhead of the previous iteration'"""
        model = CostModel(initial_delta=0.5)
        assert model.delta == 0.5
        model.record_overhead(0.12)
        assert model.delta == 0.12
        assert model.nmeasurements == 1
        est = model.estimate(0.0, 0.0, 0.0)
        assert est.total == pytest.approx(0.12)

    def test_latest_measurement_wins(self):
        model = CostModel()
        model.record_overhead(1.0)
        model.record_overhead(0.3)
        assert model.delta == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(initial_delta=-1)
        model = CostModel()
        with pytest.raises(ValueError):
            model.record_overhead(-0.1)
        with pytest.raises(ValueError):
            model.estimate(-1, 0, 0)
        with pytest.raises(ValueError):
            model.estimate(0, 0, -5)

    def test_zero_bytes_cost_is_alpha_plus_delta(self):
        model = CostModel(initial_delta=0.2)
        est = model.estimate(0.05, 1e-6, 0.0)
        assert est.total == pytest.approx(0.25)


class TestWorkloadHistory:
    def test_record_and_rotate(self):
        h = WorkloadHistory()
        h.record_solve(0, {0: 10.0, 1: 5.0})
        h.record_solve(1, {0: 4.0, 1: 4.0})
        h.record_solve(1, {0: 3.0, 1: 5.0})
        rec = h.end_coarse_step(walltime=2.0)
        assert rec.level_iterations == {0: 1, 1: 2}
        # the *last* solve of each level is kept (w^i_proc at time t)
        assert rec.proc_level_loads[1] == {0: 3.0, 1: 5.0}
        assert rec.walltime == 2.0
        assert h.last_complete is rec
        assert h.completed_steps == 1

    def test_keep_bounds_history(self):
        h = WorkloadHistory(keep=2)
        for i in range(5):
            h.record_solve(0, {0: float(i)})
            h.end_coarse_step(1.0)
        assert h.completed_steps == 2
        assert h.last_complete.proc_level_loads[0] == {0: 4.0}

    def test_group_math_eq2_eq3(self):
        system = wan_system(2, ConstantTraffic(0.0))  # pids 0,1 | 2,3
        rec = CoarseStepRecord(
            index=0,
            proc_level_loads={
                0: {0: 10.0, 1: 10.0, 2: 5.0, 3: 5.0},
                1: {0: 8.0, 1: 0.0, 2: 2.0, 3: 2.0},
            },
            level_iterations={0: 1, 1: 2},
            walltime=4.0,
        )
        # Eq. 2
        assert rec.group_level_load(system, 0, 0) == 20.0
        assert rec.group_level_load(system, 1, 1) == 4.0
        # Eq. 3: W_group = sum_i W^i_group * N_iter(i)
        assert rec.group_total_load(system, 0) == 20.0 + 2 * 8.0
        assert rec.group_total_load(system, 1) == 10.0 + 2 * 4.0

    def test_negative_walltime_raises(self):
        h = WorkloadHistory()
        with pytest.raises(ValueError):
            h.end_coarse_step(-1.0)


class TestEstimateGain:
    def make_history(self, loads_a, loads_b, walltime=10.0):
        h = WorkloadHistory()
        h.record_solve(0, {0: loads_a, 1: 0.0, 2: loads_b, 3: 0.0})
        h.end_coarse_step(walltime)
        return h

    def test_eq4_two_groups(self):
        system = wan_system(2, ConstantTraffic(0.0))
        h = self.make_history(30.0, 10.0, walltime=8.0)
        # Gain = T * (max-min)/(N*max) = 8 * 20/(2*30)
        assert estimate_gain(h, system) == pytest.approx(8.0 * 20.0 / 60.0)

    def test_balanced_zero_gain(self):
        system = wan_system(2, ConstantTraffic(0.0))
        h = self.make_history(10.0, 10.0)
        assert estimate_gain(h, system) == 0.0

    def test_no_history_zero_gain(self):
        system = wan_system(2, ConstantTraffic(0.0))
        assert estimate_gain(WorkloadHistory(), system) == 0.0

    def test_idle_system_zero_gain(self):
        system = wan_system(2, ConstantTraffic(0.0))
        h = self.make_history(0.0, 0.0)
        assert estimate_gain(h, system) == 0.0

    def test_gain_bounded_by_walltime(self):
        """Eq. 4 is 'a very conservative estimate': gain <= T/N_groups."""
        system = wan_system(2, ConstantTraffic(0.0))
        h = self.make_history(100.0, 0.0, walltime=6.0)
        assert estimate_gain(h, system) <= 6.0 / 2 + 1e-12


class TestDecide:
    def est(self, total):
        return CostEstimate(alpha=total, beta=0.0, migrate_bytes=0.0, delta=0.0)

    def test_gate_fires_above_gamma_cost(self):
        d = decide(gain=1.0, cost=self.est(0.4), gamma=2.0)
        assert d.invoke
        assert d.margin == pytest.approx(0.2)

    def test_gate_blocks_below(self):
        d = decide(gain=0.5, cost=self.est(0.4), gamma=2.0)
        assert not d.invoke

    def test_boundary_not_invoked(self):
        """Strict inequality: Gain > gamma*Cost."""
        d = decide(gain=0.8, cost=self.est(0.4), gamma=2.0)
        assert not d.invoke

    def test_gamma_zero_always_fires_on_positive_gain(self):
        assert decide(1e-9, self.est(100.0), 0.0).invoke

    def test_validation(self):
        with pytest.raises(ValueError):
            decide(-1.0, self.est(1.0), 2.0)
        with pytest.raises(ValueError):
            decide(1.0, self.est(1.0), -2.0)
