"""Unit and property tests for flag fields and buffering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.flagging import FlagField, buffer_flags


class TestFlagField:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            FlagField(Box((0, 0), (2, 2)), np.zeros((3, 3), dtype=bool))

    def test_nflagged(self):
        flags = np.zeros((4, 4), dtype=bool)
        flags[1, 2] = True
        f = FlagField(Box((0, 0), (4, 4)), flags)
        assert f.nflagged == 1
        assert f.any

    def test_empty_and_full(self):
        box = Box((0, 0), (3, 3))
        assert FlagField.empty(box).nflagged == 0
        assert FlagField.full(box).nflagged == 9

    def test_flagged_coordinates_offset_by_box_lo(self):
        flags = np.zeros((2, 2), dtype=bool)
        flags[0, 1] = True
        f = FlagField(Box((10, 20), (12, 22)), flags)
        assert f.flagged_coordinates().tolist() == [[10, 21]]

    def test_restrict(self):
        f = FlagField.full(Box((0, 0), (4, 4)))
        sub = f.restrict(Box((1, 1), (3, 3)))
        assert sub.box == Box((1, 1), (3, 3))
        assert sub.nflagged == 4

    def test_restrict_outside_raises(self):
        f = FlagField.full(Box((0, 0), (4, 4)))
        with pytest.raises(ValueError):
            f.restrict(Box((2, 2), (6, 6)))

    def test_dtype_coerced_to_bool(self):
        f = FlagField(Box((0,), (3,)), np.array([0, 2, 0]))
        assert f.flags.dtype == bool
        assert f.nflagged == 1


class TestBufferFlags:
    def test_single_cell_dilates_to_cube(self):
        flags = np.zeros((5, 5), dtype=bool)
        flags[2, 2] = True
        out = buffer_flags(FlagField(Box((0, 0), (5, 5)), flags), width=1)
        # box dilation: the 3x3 plus-star? our implementation dilates along
        # axes sequentially within one pass, giving the full 3x3 square
        assert out.nflagged == 9
        assert out.flags[1:4, 1:4].all()

    def test_zero_width_is_identity(self):
        flags = np.random.default_rng(0).random((4, 4)) < 0.5
        f = FlagField(Box((0, 0), (4, 4)), flags)
        out = buffer_flags(f, width=0)
        assert (out.flags == flags).all()

    def test_negative_width_raises(self):
        with pytest.raises(ValueError):
            buffer_flags(FlagField.empty(Box((0,), (3,))), width=-1)

    def test_does_not_escape_box(self):
        flags = np.zeros((3, 3), dtype=bool)
        flags[0, 0] = True
        out = buffer_flags(FlagField(Box((0, 0), (3, 3)), flags), width=5)
        assert out.flags.shape == (3, 3)
        assert out.flags.all()  # saturates inside the box

    @given(st.integers(min_value=0, max_value=3))
    def test_buffering_is_monotone(self, width):
        rng = np.random.default_rng(42)
        flags = rng.random((6, 6)) < 0.2
        f = FlagField(Box((0, 0), (6, 6)), flags)
        out = buffer_flags(f, width)
        # original flags always survive
        assert (out.flags | ~flags).all() or (out.flags[flags]).all()

    @given(st.integers(min_value=1, max_value=3))
    def test_buffer_composition(self, width):
        """buffer(w) == buffer(1) applied w times."""
        rng = np.random.default_rng(7)
        flags = rng.random((8, 8)) < 0.15
        f = FlagField(Box((0, 0), (8, 8)), flags)
        once = buffer_flags(f, width)
        step = f
        for _ in range(width):
            step = buffer_flags(step, 1)
        assert (once.flags == step.flags).all()
