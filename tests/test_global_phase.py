"""Unit tests for global-redistribution planning and execution (Section 4.4)."""

from __future__ import annotations

import pytest

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.config import SchemeParams, SimParams
from repro.core.base import BalanceContext
from repro.core.gain import WorkloadHistory
from repro.core.global_phase import (
    effective_level0_loads,
    execute_global_redistribution,
    plan_global_redistribution,
)
from repro.distsys import ClusterSimulator, ConstantTraffic, wan_system
from repro.distsys.events import RedistributionEvent
from repro.partition import GridAssignment
from repro.runtime import root_blocks


def make_ctx(blocks=(8, 1, 1), n=16, assign_split=4):
    """A 2-group WAN context with the first `assign_split` root slabs on
    group 0 and the rest on group 1."""
    domain = Box.cube(0, n, 3)
    h = GridHierarchy(domain, 2, 3)
    roots = h.create_root_grids(root_blocks(domain, blocks))
    system = wan_system(2, ConstantTraffic(0.0), base_speed=2e4)
    a = GridAssignment(h, system)
    for i, g in enumerate(roots):
        a.assign(g.gid, 0 if i < assign_split else 2)
    ctx = BalanceContext(
        hierarchy=h, assignment=a, system=system,
        sim=ClusterSimulator(system),
        sim_params=SimParams(), scheme_params=SchemeParams(),
        history=WorkloadHistory(),
    )
    return ctx, roots


class TestEffectiveLoads:
    def test_no_children_equals_level0_workload_times_iter(self):
        ctx, roots = make_ctx()
        eff = effective_level0_loads(ctx)
        # no history: N_iter(0) falls back to ratio^0 == 1
        for g in roots:
            assert eff[g.gid] == pytest.approx(g.workload)

    def test_subtree_weighted_by_nominal_iterations(self):
        ctx, roots = make_ctx()
        child = ctx.hierarchy.add_grid(1, Box((0, 0, 0), (4, 4, 4)), roots[0].gid)
        ctx.assignment.assign(child.gid, 0)
        eff = effective_level0_loads(ctx)
        # level 1 runs ratio^1 = 2 sub-iterations per coarse step
        assert eff[roots[0].gid] == pytest.approx(roots[0].workload + 2 * child.workload)

    def test_history_iterations_override_nominal(self):
        ctx, roots = make_ctx()
        child = ctx.hierarchy.add_grid(1, Box((0, 0, 0), (4, 4, 4)), roots[0].gid)
        ctx.assignment.assign(child.gid, 0)
        ctx.history.record_solve(0, {0: 1.0})
        for _ in range(5):
            ctx.history.record_solve(1, {0: 1.0})
        ctx.history.end_coarse_step(1.0)
        eff = effective_level0_loads(ctx)
        assert eff[roots[0].gid] == pytest.approx(roots[0].workload + 5 * child.workload)


class TestPlan:
    def test_balanced_plan_empty(self):
        ctx, _ = make_ctx(assign_split=4)  # 4/4 split, uniform loads
        assert plan_global_redistribution(ctx).empty

    def test_imbalanced_plan_moves_from_donor(self):
        ctx, roots = make_ctx(assign_split=6)  # 6 slabs on group 0, 2 on group 1
        plan = plan_global_redistribution(ctx)
        assert not plan.empty
        for gid, src, dst in plan.moves:
            assert ctx.assignment.group_of(gid) == 0  # donor is group 0
            assert ctx.system.processor(dst).group_id == 1
        assert plan.migrate_cells > 0

    def test_plan_moves_boundary_grids_first(self):
        ctx, roots = make_ctx(assign_split=6)
        plan = plan_global_redistribution(ctx)
        # group 1 holds the highest-x slabs; the donor grids closest to it
        # (largest lo[0] among group-0 slabs) must move first
        moved = {gid for gid, _, _ in plan.moves}
        donor_grids = sorted(
            (g for g in ctx.hierarchy.level_grids(0)
             if ctx.assignment.group_of(g.gid) == 0),
            key=lambda g: -g.box.lo[0],
        )
        expected_first = {g.gid for g in donor_grids[: len(moved)]}
        assert moved == expected_first

    def test_plan_is_pure(self):
        ctx, _ = make_ctx(assign_split=6)
        version_before = ctx.hierarchy.version
        clock_before = ctx.sim.clock
        plan_global_redistribution(ctx)
        assert ctx.hierarchy.version == version_before
        assert ctx.sim.clock == clock_before

    def test_fine_workload_triggers_plan_even_if_level0_uniform(self):
        """The Fig. 6 scenario: level-0 is uniform but one group anchors
        all the refinement, so its effective load is larger."""
        ctx, roots = make_ctx(assign_split=4)  # even level-0 split
        # pile children under group 0's first slab
        child = ctx.hierarchy.add_grid(1, roots[0].box.refine(2), roots[0].gid)
        ctx.assignment.assign(child.gid, 0)
        plan = plan_global_redistribution(ctx)
        assert not plan.empty


class TestExecute:
    def test_execute_moves_and_charges(self):
        ctx, _ = make_ctx(assign_split=6)
        plan = plan_global_redistribution(ctx)
        nmoved, cells, delta = execute_global_redistribution(ctx, plan, 0.5)
        assert nmoved >= len(plan.moves)
        assert cells > 0
        assert delta > 0
        assert ctx.sim.clock > 0
        assert ctx.sim.balance_overhead > 0
        ev = ctx.sim.log.of_type(RedistributionEvent)
        assert len(ev) == 1
        assert ev[0].predicted_cost == 0.5

    def test_execute_results_in_balance(self):
        ctx, _ = make_ctx(assign_split=6)
        plan = plan_global_redistribution(ctx)
        execute_global_redistribution(ctx, plan, 0.0)
        loads = ctx.assignment.group_level_loads(0)
        ratio = max(loads.values()) / min(loads.values())
        assert ratio < 1.4  # near balance at whole/carved-grid granularity

    def test_empty_plan_noop(self):
        ctx, _ = make_ctx(assign_split=4)
        plan = plan_global_redistribution(ctx)
        assert execute_global_redistribution(ctx, plan, 0.0) == (0, 0, 0.0)
        assert ctx.sim.clock == 0.0

    def test_carve_used_for_fractional_moves(self):
        # one root grid holding everything: balancing needs half of it
        ctx, roots = make_ctx(blocks=(1, 1, 1), assign_split=1)
        plan = plan_global_redistribution(ctx)
        assert plan.carves, "expected a split for the fractional boundary shift"
        ngrids_before = len(ctx.hierarchy.level_grids(0))
        execute_global_redistribution(ctx, plan, 0.0)
        assert len(ctx.hierarchy.level_grids(0)) == ngrids_before + 1
        ctx.hierarchy.validate()
        ctx.assignment.validate()
