"""Tests for federations of more than two groups.

The paper's testbed has two sites, but nothing in the scheme is binary:
Eq. 4's gain and the capacity-proportional global phase are defined over any
number of groups.  These tests pin that generality down.
"""

from __future__ import annotations

import pytest

from repro.amr.applications import ShockPool3D
from repro.core import DistributedDLB, ParallelDLB
from repro.core.gain import WorkloadHistory, estimate_gain
from repro.distsys import ConstantTraffic, multi_site_system
from repro.runtime import SAMRRunner


class TestMultiSiteSystem:
    def test_three_sites_shape(self):
        s = multi_site_system([2, 2, 2], ConstantTraffic(0.2))
        assert s.ngroups == 3
        assert s.nprocs == 6
        # every pair connected with its own link
        assert len(s.inter_links) == 3
        assert s.inter_link(0, 2) is not s.inter_link(0, 1)

    def test_uneven_sites(self):
        s = multi_site_system([1, 2, 4])
        assert s.capacity_fraction(2) == pytest.approx(4 / 7)

    def test_weighted_sites(self):
        s = multi_site_system([2, 2], group_weights=[1.0, 3.0])
        assert s.capacity_fraction(1) == pytest.approx(0.75)

    def test_single_site_rejected(self):
        with pytest.raises(ValueError):
            multi_site_system([4])


class TestThreeSiteRuns:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for name, S in (("parallel", ParallelDLB), ("distributed", DistributedDLB)):
            app = ShockPool3D(domain_cells=16, max_levels=3)
            sys_ = multi_site_system([2, 2, 2], ConstantTraffic(0.3), base_speed=2e4)
            out[name] = SAMRRunner(app, sys_, S()).run(4)
        return out

    def test_both_schemes_complete(self, results):
        for r in results.values():
            assert r.total_time > 0

    def test_distributed_wins_with_three_sites(self, results):
        assert results["distributed"].total_time < results["parallel"].total_time

    def test_redistributions_fire(self, results):
        assert results["distributed"].redistributions >= 1

    def test_no_remote_parent_child_three_sites(self, results):
        kinds = results["distributed"].remote_bytes_by_kind
        assert kinds.get("parent_child", 0.0) == 0.0

    def test_plan_never_moves_a_grid_twice(self):
        """Regression: with several receivers the planner must not claim
        the same donor grid for two destinations."""
        from repro.core.global_phase import plan_global_redistribution
        from repro.core.base import BalanceContext
        from repro.core.gain import WorkloadHistory
        from repro.distsys import ClusterSimulator
        from repro.partition import GridAssignment
        from repro.amr.box import Box
        from repro.amr.hierarchy import GridHierarchy
        from repro.runtime import root_blocks

        domain = Box.cube(0, 16, 3)
        h = GridHierarchy(domain, 2, 3)
        roots = h.create_root_grids(root_blocks(domain, (8, 1, 1)))
        system = multi_site_system([2, 2, 2], ConstantTraffic(0.0), base_speed=2e4)
        a = GridAssignment(h, system)
        # pile everything on site 0: two receivers with deficits
        for g in roots:
            a.assign(g.gid, 0)
        ctx = BalanceContext(
            hierarchy=h, assignment=a, system=system,
            sim=ClusterSimulator(system), history=WorkloadHistory(),
        )
        plan = plan_global_redistribution(ctx)
        claimed = [gid for gid, _s, _d in plan.moves] + [c.gid for c in plan.carves]
        assert len(claimed) == len(set(claimed))
        assert not plan.empty
        # both receivers get grids
        dst_groups = {system.processor(d).group_id for _g, _s, d in plan.moves}
        assert dst_groups >= {1, 2}


class TestGainWithThreeGroups:
    def test_eq4_uses_group_count(self):
        system = multi_site_system([1, 1, 1], ConstantTraffic(0.0))
        h = WorkloadHistory()
        h.record_solve(0, {0: 30.0, 1: 10.0, 2: 20.0})
        h.end_coarse_step(walltime=9.0)
        # Gain = T * (max-min)/(N*max) = 9 * 20/(3*30)
        assert estimate_gain(h, system) == pytest.approx(2.0)
