"""Unit tests for network links and presets."""

from __future__ import annotations

import pytest

from repro.distsys.network import Link, gigabit_lan, mren_wan, origin2000_interconnect
from repro.distsys.traffic import MAX_OCCUPANCY, ConstantTraffic, NoTraffic


class _SaturatedTraffic:
    """A hostile traffic model reporting occupancy >= 1 (or < 0)."""

    def __init__(self, level: float):
        self.level = level

    def occupancy(self, time: float) -> float:
        return self.level


class TestLink:
    def test_transfer_time_is_alpha_plus_beta_l(self):
        link = Link("test", latency=0.01, bandwidth=1e6)
        assert link.transfer_time(0, 0.0) == pytest.approx(0.01)
        assert link.transfer_time(1e6, 0.0) == pytest.approx(1.01)

    def test_beta_is_inverse_rate(self):
        link = Link("test", latency=0.0, bandwidth=2e6)
        assert link.beta(0.0) == pytest.approx(5e-7)

    def test_occupancy_reduces_bandwidth(self):
        link = Link("test", latency=0.001, bandwidth=1e6,
                    traffic=ConstantTraffic(0.5))
        assert link.effective_bandwidth(0.0) == pytest.approx(5e5)

    def test_occupancy_inflates_latency(self):
        link = Link("t", latency=0.001, bandwidth=1e6,
                    traffic=ConstantTraffic(0.5), latency_load_factor=4.0)
        assert link.effective_latency(0.0) == pytest.approx(0.003)

    def test_dedicated_link_unaffected(self):
        link = Link("t", latency=0.001, bandwidth=1e6, traffic=NoTraffic())
        assert link.alpha(100.0) == 0.001
        assert link.effective_bandwidth(100.0) == 1e6

    def test_negative_bytes_raise(self):
        link = Link("t", latency=0.0, bandwidth=1e6)
        with pytest.raises(ValueError):
            link.transfer_time(-1, 0.0)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            Link("t", latency=-1, bandwidth=1e6)
        with pytest.raises(ValueError):
            Link("t", latency=0, bandwidth=0)
        with pytest.raises(ValueError):
            Link("t", latency=0, bandwidth=1, latency_load_factor=-1)


class TestPresets:
    def test_ordering_of_latencies(self):
        """Origin interconnect << LAN << WAN, as in the paper's testbed."""
        assert (
            origin2000_interconnect().latency
            < gigabit_lan().latency
            < mren_wan().latency
        )

    def test_ordering_of_bandwidths(self):
        assert (
            origin2000_interconnect().bandwidth
            > gigabit_lan().bandwidth
            > mren_wan().bandwidth
        )

    def test_origin_is_dedicated(self):
        link = origin2000_interconnect()
        assert isinstance(link.traffic, NoTraffic)

    def test_presets_accept_traffic(self):
        t = ConstantTraffic(0.3)
        assert gigabit_lan(t).traffic is t
        assert mren_wan(t).traffic is t

    def test_wan_transfer_dominated_by_latency_for_small_messages(self):
        wan = mren_wan()
        t = wan.transfer_time(64, 0.0)
        assert t == pytest.approx(wan.latency + wan.per_message_overhead, rel=0.01)

    def test_phase_time_components(self):
        link = Link("t", latency=0.01, bandwidth=1e6, per_message_overhead=0.001)
        # alpha once + 3 overheads + bytes
        assert link.phase_time(3, 1e6, 0.0) == pytest.approx(0.01 + 0.003 + 1.0)
        assert link.phase_time(0, 0.0, 0.0) == 0.0

    def test_phase_time_validation(self):
        link = Link("t", latency=0.01, bandwidth=1e6)
        with pytest.raises(ValueError):
            link.phase_time(-1, 0, 0.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            Link("t", latency=0.0, bandwidth=1e6, per_message_overhead=-1)


class TestOccupancyClamp:
    """Regression: occupancy >= 1 must not zero (or negate) the bandwidth.

    A traffic model reporting full saturation previously made
    ``effective_bandwidth`` zero and ``beta`` infinite -- a divide-by-zero
    waiting to happen in every phase-time sum.  The clamp keeps a saturated
    link a (very) slow link.
    """

    def test_saturated_traffic_keeps_bandwidth_positive(self):
        link = Link("t", latency=0.001, bandwidth=1e6,
                    traffic=_SaturatedTraffic(1.0))
        assert link.occupancy(0.0) == pytest.approx(MAX_OCCUPANCY)
        assert link.effective_bandwidth(0.0) > 0.0
        assert link.beta(0.0) < float("inf")

    def test_oversaturated_traffic_clamped(self):
        link = Link("t", latency=0.001, bandwidth=1e6,
                    traffic=_SaturatedTraffic(3.5))
        assert link.occupancy(123.0) == pytest.approx(MAX_OCCUPANCY)
        t = link.transfer_time(1024, 123.0)
        assert t > 0.0 and t < float("inf")

    def test_negative_occupancy_clamped_to_idle(self):
        link = Link("t", latency=0.001, bandwidth=1e6,
                    traffic=_SaturatedTraffic(-0.25))
        assert link.occupancy(0.0) == 0.0
        assert link.effective_bandwidth(0.0) == pytest.approx(1e6)

    def test_degraded_link_overlay_stays_finite(self):
        """A fault overlay stacking on heavy traffic must stay finite."""
        base = Link("t", latency=0.005, bandwidth=19e6,
                    traffic=_SaturatedTraffic(0.999))
        # a degradation overlay divides bandwidth further, as the fault
        # schedule does; phase_time must remain positive and finite
        degraded = Link("t-degraded", latency=base.latency * 4,
                        bandwidth=base.bandwidth / 10,
                        traffic=base.traffic)
        t = degraded.phase_time(4, 1e6, 0.0)
        assert 0.0 < t < float("inf")

    def test_clamp_is_noop_for_builtin_models(self):
        """Built-in models already sit inside [0, MAX_OCCUPANCY]: the clamp
        must be bit-for-bit invisible for them (golden safety)."""
        for level in (0.0, 0.3, MAX_OCCUPANCY):
            link = Link("t", latency=0.001, bandwidth=1e6,
                        traffic=ConstantTraffic(level))
            assert link.occupancy(7.0) == level
