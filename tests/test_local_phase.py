"""Unit and property tests for LPT placement and greedy rebalancing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.grid import Grid
from repro.core.local_phase import lpt_assign, plan_rebalance
from repro.metrics.imbalance import imbalance_ratio


def make_grids(sizes, level=0):
    grids = []
    for i, s in enumerate(sizes):
        # stack boxes along x so they are valid disjoint grids
        grids.append(Grid(gid=i, level=0, box=Box((i * 100, 0), (i * 100 + s, 1))))
    return grids


class TestLPT:
    def test_even_split(self):
        grids = make_grids([4, 4, 4, 4])
        targets = {0: 8.0, 1: 8.0}
        owner = lpt_assign(grids, targets)
        loads = {0: 0.0, 1: 0.0}
        for g in grids:
            loads[owner[g.gid]] += g.workload
        assert loads[0] == loads[1] == 8.0

    def test_weighted_targets(self):
        grids = make_grids([3, 3, 3, 3])
        targets = {0: 9.0, 1: 3.0}
        owner = lpt_assign(grids, targets)
        loads = {0: 0.0, 1: 0.0}
        for g in grids:
            loads[owner[g.gid]] += g.workload
        assert loads[0] == 9.0
        assert loads[1] == 3.0

    def test_empty_targets_raise(self):
        with pytest.raises(ValueError):
            lpt_assign(make_grids([1]), {})

    def test_deterministic(self):
        grids = make_grids([5, 3, 8, 2, 7])
        targets = {0: 10.0, 1: 10.0, 2: 5.0}
        assert lpt_assign(grids, targets) == lpt_assign(grids, targets)

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=30),
        nprocs=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_lpt_near_optimal(self, sizes, nprocs):
        """LPT's max load <= target + largest grid (standard LPT bound)."""
        grids = make_grids(sizes)
        total = float(sum(sizes))
        targets = {p: total / nprocs for p in range(nprocs)}
        owner = lpt_assign(grids, targets)
        loads = {p: 0.0 for p in range(nprocs)}
        for g in grids:
            loads[owner[g.gid]] += g.workload
        assert sum(loads.values()) == pytest.approx(total)
        assert max(loads.values()) <= total / nprocs + max(sizes)


class TestPlanRebalance:
    def test_no_moves_when_balanced(self):
        grids = make_grids([4, 4])
        owner = {0: 0, 1: 1}
        targets = {0: 4.0, 1: 4.0}
        assert plan_rebalance(grids, owner, targets) == []

    def test_fixes_gross_imbalance(self):
        grids = make_grids([4, 4, 4, 4])
        owner = {g.gid: 0 for g in grids}
        targets = {0: 8.0, 1: 8.0}
        moves = plan_rebalance(grids, owner, targets)
        loads = {0: 16.0, 1: 0.0}
        for gid, src, dst in moves:
            w = grids[gid].workload
            loads[src] -= w
            loads[dst] += w
        assert loads[0] == loads[1] == 8.0

    def test_moves_reference_current_owner(self):
        grids = make_grids([4, 4, 4, 4])
        owner = {g.gid: 0 for g in grids}
        targets = {0: 8.0, 1: 8.0}
        for gid, src, dst in plan_rebalance(grids, owner, targets):
            assert src == 0 and dst == 1

    def test_owner_outside_targets_raises(self):
        grids = make_grids([4])
        with pytest.raises(ValueError):
            plan_rebalance(grids, {0: 9}, {0: 4.0, 1: 0.0})

    def test_tolerance_suppresses_tiny_moves(self):
        grids = make_grids([10, 9])
        owner = {0: 0, 1: 1}
        targets = {0: 9.5, 1: 9.5}
        assert plan_rebalance(grids, owner, targets, tolerance=0.2) == []

    def test_respects_max_moves(self):
        grids = make_grids([1] * 20)
        owner = {g.gid: 0 for g in grids}
        targets = {0: 10.0, 1: 10.0}
        moves = plan_rebalance(grids, owner, targets, max_moves=3)
        assert len(moves) == 3

    def test_indivisible_grid_not_shuttled(self):
        """One huge grid on each side: no move can improve -> no moves."""
        grids = make_grids([10, 10])
        owner = {0: 0, 1: 0}
        targets = {0: 10.0, 1: 10.0}
        moves = plan_rebalance(grids, owner, targets, tolerance=0.01)
        # moving one 10-unit grid to pid 1 balances exactly
        loads = {0: 20.0, 1: 0.0}
        for gid, src, dst in moves:
            loads[src] -= grids[gid].workload
            loads[dst] += grids[gid].workload
        assert loads == {0: 10.0, 1: 10.0}

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=30), min_size=2, max_size=40),
        seed=st.integers(min_value=0, max_value=999),
        nprocs=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_never_worse(self, sizes, seed, nprocs):
        """Rebalancing never increases the imbalance ratio."""
        import numpy as np

        rng = np.random.default_rng(seed)
        grids = make_grids(sizes)
        owner = {g.gid: int(rng.integers(nprocs)) for g in grids}
        total = float(sum(sizes))
        targets = {p: total / nprocs for p in range(nprocs)}

        def loads_of(ownmap):
            loads = {p: 0.0 for p in range(nprocs)}
            for g in grids:
                loads[ownmap[g.gid]] += g.workload
            return loads

        before = imbalance_ratio(loads_of(owner))
        own2 = dict(owner)
        for gid, src, dst in plan_rebalance(grids, owner, targets):
            assert own2[gid] == src
            own2[gid] = dst
        after = imbalance_ratio(loads_of(own2))
        assert after <= before + 1e-9

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=5), min_size=8, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_small_grids_balance_tightly(self, sizes):
        """With many small grids, the greedy pass ends near the target."""
        grids = make_grids(sizes)
        owner = {g.gid: 0 for g in grids}
        total = float(sum(sizes))
        targets = {0: total / 2, 1: total / 2}
        own2 = dict(owner)
        for gid, src, dst in plan_rebalance(grids, owner, targets, tolerance=0.01):
            own2[gid] = dst
        loads = {0: 0.0, 1: 0.0}
        for g in grids:
            loads[own2[g.gid]] += g.workload
        # within one largest-grid of perfect balance
        assert abs(loads[0] - loads[1]) <= 2 * max(sizes)
