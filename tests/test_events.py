"""Unit tests for the event log."""

from __future__ import annotations

from repro.distsys.events import (
    CommEvent,
    ComputeEvent,
    EventLog,
    GlobalDecisionEvent,
    RegridEvent,
)


def make_log():
    log = EventLog()
    log.record(ComputeEvent(time=1.0, level=0, seq=1, elapsed=1.0,
                            max_load=10, total_load=20))
    log.record(CommEvent(time=2.0, level=0, purpose="ghost", elapsed=1.0,
                         local_time=0.5, remote_time=0.5, local_bytes=1,
                         remote_bytes=2))
    log.record(ComputeEvent(time=3.0, level=1, seq=2, elapsed=1.0,
                            max_load=5, total_load=10))
    return log


class TestEventLog:
    def test_len_and_iter(self):
        log = make_log()
        assert len(log) == 3
        assert len(list(log)) == 3

    def test_of_type_filters_exactly(self):
        log = make_log()
        computes = log.of_type(ComputeEvent)
        assert len(computes) == 2
        assert all(isinstance(e, ComputeEvent) for e in computes)
        assert log.of_type(RegridEvent) == []

    def test_of_type_is_exact_not_subclass(self):
        log = make_log()
        from repro.distsys.events import Event

        assert log.of_type(Event) == []  # no bare Events recorded

    def test_last(self):
        log = make_log()
        assert log.last(ComputeEvent).seq == 2
        assert log.last(GlobalDecisionEvent) is None

    def test_between(self):
        log = make_log()
        assert len(log.between(1.5, 3.0)) == 1
        assert len(log.between(0.0, 10.0)) == 3

    def test_events_are_frozen(self):
        log = make_log()
        ev = log.of_type(ComputeEvent)[0]
        import dataclasses
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            ev.time = 5.0
