"""Tests for seed replication and CSV export."""

from __future__ import annotations

import csv

import pytest

from repro.harness import (
    ExperimentConfig,
    fig3_to_csv,
    fig8_to_csv,
    replicate,
    run_sweep,
    sweep_to_csv,
)


@pytest.fixture(scope="module")
def replicated():
    cfg = ExperimentConfig(procs_per_group=1, steps=3)
    return replicate(cfg, seeds=(1, 2, 3))


class TestReplicate:
    def test_one_pair_per_seed(self, replicated):
        assert len(replicated.pairs) == 3
        assert replicated.seeds == [1, 2, 3]

    def test_statistics_consistent(self, replicated):
        vals = replicated.improvements
        assert replicated.min_improvement == min(vals)
        assert replicated.max_improvement == max(vals)
        assert (
            replicated.min_improvement
            <= replicated.mean_improvement
            <= replicated.max_improvement
        )
        assert replicated.std_improvement >= 0.0

    def test_seeds_actually_vary_the_runs(self, replicated):
        """Bursty traffic realisations differ, so totals differ."""
        totals = {round(p.parallel.total_time, 9) for p in replicated.pairs}
        assert len(totals) > 1

    def test_single_seed_std_zero(self):
        cfg = ExperimentConfig(procs_per_group=1, steps=2)
        r = replicate(cfg, seeds=(7,))
        assert r.std_improvement == 0.0

    def test_empty_seeds_raise(self):
        with pytest.raises(ValueError):
            replicate(ExperimentConfig(), seeds=())

    def test_summary_mentions_spread(self, replicated):
        text = replicated.summary()
        assert "+/-" in text and "traffic seeds" in text


class TestExport:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sweep(
            ExperimentConfig(procs_per_group=1, steps=2),
            procs_per_group=(1,), with_sequential=True,
        )

    def test_sweep_csv_roundtrip(self, sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep_to_csv(sweep, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        assert rows[0]["config"] == "1+1"
        assert float(rows[0]["parallel_total_s"]) == pytest.approx(
            sweep.pairs[0].parallel.total_time
        )
        assert float(rows[0]["parallel_efficiency"]) > 0

    def test_sweep_csv_without_sequential(self, tmp_path):
        sweep = run_sweep(ExperimentConfig(procs_per_group=1, steps=2),
                          procs_per_group=(1,))
        path = tmp_path / "s.csv"
        sweep_to_csv(sweep, path)
        with open(path) as fh:
            header = fh.readline()
        assert "sequential" not in header

    def test_fig3_csv(self, tmp_path):
        from repro.harness import fig3_parallel_vs_distributed

        result = fig3_parallel_vs_distributed(
            configs=(1,), base=ExperimentConfig(steps=2)
        )
        path = tmp_path / "fig3.csv"
        fig3_to_csv(result, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["config"] == "1+1"
        assert float(rows[0]["distributed_comm_s"]) > 0

    def test_fig8_csv(self, tmp_path):
        from repro.harness import fig8_efficiency

        result = fig8_efficiency("shockpool3d", configs=(1,), steps=2)
        path = tmp_path / "fig8.csv"
        fig8_to_csv(result, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert 0 < float(rows[0]["parallel_efficiency"]) <= 1.05
