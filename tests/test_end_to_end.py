"""End-to-end integration tests: the paper's headline claims, in miniature.

These run real (small) experiments and assert the paper's *qualitative*
results: the distributed scheme beats the group-oblivious baseline on a
distributed system, the gap grows with processor count, remote traffic is
the mechanism, and the gain/cost gate keeps redistribution profitable.
"""

from __future__ import annotations

import pytest

from repro import quick_run
from repro.amr.applications import BlastWave, ShockPool3D
from repro.core import DistributedDLB
from repro.distsys import ConstantTraffic, wan_system
from repro.distsys.events import GlobalDecisionEvent, RedistributionEvent
from repro.harness import ExperimentConfig, run_experiment, run_paired
from repro.runtime import SAMRRunner


@pytest.fixture(scope="module")
def paired_2x2():
    cfg = ExperimentConfig(
        app_name="shockpool3d", network="wan", procs_per_group=2, steps=3
    )
    return run_paired(cfg, with_sequential=True)


@pytest.fixture(scope="module")
def paired_4x4():
    cfg = ExperimentConfig(
        app_name="shockpool3d", network="wan", procs_per_group=4, steps=3
    )
    return run_paired(cfg)


class TestHeadlineClaims:
    def test_distributed_beats_parallel_on_wan(self, paired_2x2):
        """The paper's core claim, at 2+2."""
        assert paired_2x2.improvement > 0

    def test_improvement_grows_with_processors(self, paired_2x2, paired_4x4):
        """'especially as the number of processors is increased'."""
        assert paired_4x4.improvement > paired_2x2.improvement

    def test_improvement_within_papers_band(self, paired_4x4):
        """Paper: 2.6%-44.2% for ShockPool3D; allow simulator headroom."""
        assert 0.0 < paired_4x4.improvement < 0.60

    def test_efficiency_improves(self, paired_2x2):
        assert paired_2x2.distributed_efficiency > paired_2x2.parallel_efficiency

    def test_mechanism_is_remote_traffic(self, paired_2x2):
        """The win comes from cutting remote communication, not compute."""
        par, dist = paired_2x2.parallel, paired_2x2.distributed
        assert dist.remote_comm_busy < 0.5 * par.remote_comm_busy

    def test_workload_identical_across_schemes(self, paired_2x2):
        """Paired methodology: both schemes saw the same physics."""
        assert paired_2x2.parallel.final_cells == paired_2x2.distributed.final_cells

    def test_zero_remote_parent_child_bytes(self, paired_2x2):
        """Section 4.1's guarantee, verified at the byte level: "children
        grids are always located at the same group as their parent grids;
        thus no remote communication is needed between parent and children
        grids"."""
        dist_kinds = paired_2x2.distributed.remote_bytes_by_kind
        par_kinds = paired_2x2.parallel.remote_bytes_by_kind
        assert dist_kinds.get("parent_child", 0.0) == 0.0
        assert par_kinds.get("parent_child", 0.0) > 0.0

    def test_remote_sibling_traffic_is_small(self, paired_2x2):
        """"There may be some boundary information exchange between sibling
        grids which usually is very small" -- compared to the baseline's."""
        dist = paired_2x2.distributed.remote_bytes_by_kind
        par = paired_2x2.parallel.remote_bytes_by_kind
        assert dist.get("sibling", 0.0) < par.get("sibling", 0.0)


class TestSchemeDynamics:
    def test_redistributions_fire_on_moving_shock(self):
        result = quick_run("shockpool3d", procs_per_group=2, steps=6,
                           scheme_name="distributed")
        assert result.redistributions >= 1

    def test_gate_rejects_when_gamma_huge(self):
        cfg = ExperimentConfig(procs_per_group=2, steps=4, gamma=1e9)
        result = run_experiment(cfg, "distributed")
        assert result.redistributions == 0
        decisions = result.events.of_type(GlobalDecisionEvent)
        assert decisions and not any(d.invoked for d in decisions)

    def test_gamma_zero_fires_more_often(self):
        eager = run_experiment(
            ExperimentConfig(procs_per_group=2, steps=4, gamma=0.0), "distributed"
        )
        default = run_experiment(
            ExperimentConfig(procs_per_group=2, steps=4, gamma=2.0), "distributed"
        )
        assert eager.redistributions >= default.redistributions

    def test_symmetric_blastwave_rarely_redistributes(self):
        """BlastWave grows symmetrically: both groups gain work at the same
        rate, so a correct gate sees little gain and rarely fires."""
        app = BlastWave(domain_cells=16, max_levels=3)
        shock = ShockPool3D(domain_cells=16, max_levels=3)
        def system():
            return wan_system(2, ConstantTraffic(0.3), base_speed=2e4)
        blast = SAMRRunner(app, system(), DistributedDLB()).run(4)
        moving = SAMRRunner(shock, system(), DistributedDLB()).run(4)
        assert blast.redistributions <= moving.redistributions

    def test_redistribution_reduces_group_imbalance(self):
        """Around each redistribution, capacity-normalised level-0 group
        loads get closer."""
        from repro.core.global_phase import effective_level0_loads

        cfg = ExperimentConfig(procs_per_group=2, steps=5)
        captured = []

        class Capture(SAMRRunner):
            def global_balance(self, time):
                def imb():
                    eff = effective_level0_loads(self.ctx)
                    loads = {g.group_id: 0.0 for g in self.system.groups}
                    for gid, load in eff.items():
                        loads[self.assignment.group_of(gid)] += load
                    hi, lo = max(loads.values()), min(loads.values())
                    return hi / lo if lo > 0 else float("inf")

                n = len(self.sim.log.of_type(RedistributionEvent))
                before = imb()
                super().global_balance(time)
                if len(self.sim.log.of_type(RedistributionEvent)) > n:
                    captured.append((before, imb()))

        from repro.harness import make_app, make_system

        Capture(make_app(cfg), make_system(cfg), DistributedDLB()).run(cfg.steps)
        assert captured, "no redistribution fired"
        for before, after in captured:
            assert after < before


class TestCrossSchemeInvariants:
    @pytest.mark.parametrize("scheme", ["parallel", "distributed"])
    def test_all_grids_assigned_throughout(self, scheme):
        cfg = ExperimentConfig(procs_per_group=2, steps=3)
        from repro.harness import make_app, make_scheme, make_system

        runner = SAMRRunner(make_app(cfg), make_system(cfg), make_scheme(scheme))
        for _ in range(cfg.steps):
            runner.integrator.step()
            runner.assignment.validate()
            runner.hierarchy.validate()

    @pytest.mark.parametrize("app", ["shockpool3d", "amr64", "blastwave"])
    def test_every_app_runs_both_schemes(self, app):
        for scheme in ("parallel", "distributed"):
            r = quick_run(app, procs_per_group=1, steps=2, scheme_name=scheme)
            assert r.total_time > 0

    def test_identical_seeds_identical_results(self):
        cfg = ExperimentConfig(procs_per_group=2, steps=2)
        a = run_experiment(cfg, "distributed")
        b = run_experiment(cfg, "distributed")
        assert a.total_time == pytest.approx(b.total_time, rel=1e-12)
        assert a.final_cells == b.final_cells
