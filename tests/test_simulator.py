"""Unit tests for the cluster simulator and the network probe."""

from __future__ import annotations

import pytest

from repro.distsys.comm import Message, MessageKind
from repro.distsys.events import CommEvent, ComputeEvent, ProbeEvent
from repro.distsys.simulator import (
    PROBE_LARGE_BYTES,
    PROBE_SMALL_BYTES,
    ClusterSimulator,
)
from repro.distsys.system import parallel_system, wan_system
from repro.distsys.traffic import ConstantTraffic, DiurnalTraffic


class TestRunCompute:
    def test_elapsed_is_max_over_processors(self):
        sim = ClusterSimulator(parallel_system(2, base_speed=1e3))
        elapsed = sim.run_compute({0: 1000.0, 1: 500.0})
        assert elapsed == pytest.approx(1.0)
        assert sim.clock == pytest.approx(1.0)
        assert sim.compute_time == pytest.approx(1.0)

    def test_weights_speed_up_processors(self):
        from repro.distsys.system import build_system
        from repro.distsys.network import mren_wan

        s = build_system([1, 1], inter_link=mren_wan(), group_weights=[1.0, 4.0],
                         base_speed=1e3)
        sim = ClusterSimulator(s)
        # same load -> the weight-4 processor finishes 4x sooner
        elapsed = sim.run_compute({0: 1000.0, 1: 1000.0})
        assert elapsed == pytest.approx(1.0)  # dominated by the slow one

    def test_empty_loads_free(self):
        sim = ClusterSimulator(parallel_system(2))
        assert sim.run_compute({}) == 0.0

    def test_event_recorded(self):
        sim = ClusterSimulator(parallel_system(2, base_speed=1e3))
        sim.run_compute({0: 10.0}, level=1, seq=3)
        ev = sim.log.of_type(ComputeEvent)
        assert len(ev) == 1
        assert ev[0].level == 1 and ev[0].seq == 3
        assert ev[0].total_load == 10.0


class TestRunComm:
    def test_advances_clock_and_accounts(self):
        sim = ClusterSimulator(wan_system(1, ConstantTraffic(0.0)))
        msgs = [Message(0, 1, 1e6, MessageKind.MIGRATION)]
        r = sim.run_comm(msgs, purpose="migration", count_as_balance=True)
        assert sim.clock == pytest.approx(r.elapsed)
        assert sim.comm_time == pytest.approx(r.elapsed)
        assert sim.balance_overhead == pytest.approx(r.elapsed)
        assert sim.comm_time_by_purpose["migration"] == pytest.approx(r.elapsed)

    def test_not_balance_by_default(self):
        sim = ClusterSimulator(wan_system(1))
        sim.run_comm([Message(0, 1, 100, MessageKind.SIBLING)])
        assert sim.balance_overhead == 0.0

    def test_comm_event_logged(self):
        sim = ClusterSimulator(wan_system(1))
        sim.run_comm([Message(0, 1, 100, MessageKind.SIBLING)], level=2,
                     purpose="ghost")
        ev = sim.log.of_type(CommEvent)[0]
        assert ev.level == 2
        assert ev.purpose == "ghost"
        assert ev.remote_bytes == 100


class TestProbe:
    def test_recovers_link_parameters_exactly(self):
        """Two-point probe solves alpha+beta*L exactly on a static link.

        The probe's alpha includes the per-message software overhead -- the
        probe measures what a real message experiences end to end."""
        sys_ = wan_system(1, ConstantTraffic(0.3))
        sim = ClusterSimulator(sys_)
        link = sys_.inter_link(0, 1)
        alpha_true = link.alpha(0.0) + link.per_message_overhead
        beta_true = link.beta(0.0)
        alpha, beta = sim.probe_inter_link(0, 1)
        assert alpha == pytest.approx(alpha_true, rel=1e-9)
        assert beta == pytest.approx(beta_true, rel=1e-9)

    def test_probe_charges_time(self):
        sim = ClusterSimulator(wan_system(1))
        sim.probe_inter_link(0, 1)
        assert sim.clock > 0
        assert sim.probe_time == pytest.approx(sim.clock)
        assert sim.comm_time_by_purpose["probe"] > 0

    def test_probe_event_logged(self):
        sim = ClusterSimulator(wan_system(1))
        sim.probe_inter_link(0, 1)
        ev = sim.log.of_type(ProbeEvent)[0]
        assert (ev.group_a, ev.group_b) == (0, 1)
        assert ev.beta_estimate > 0

    def test_probe_tracks_changing_traffic(self):
        """Probes at different times see different network weather."""
        sys_ = wan_system(1, DiurnalTraffic(mean=0.4, amplitude=0.3, period=100.0))
        sim = ClusterSimulator(sys_)
        a1, b1 = sim.probe_inter_link(0, 1)
        sim.charge_overhead(25.0, as_balance=False)  # quarter period later
        a2, b2 = sim.probe_inter_link(0, 1)
        assert a1 != a2
        assert b1 != b2

    def test_probe_sizes_sensible(self):
        assert PROBE_SMALL_BYTES < PROBE_LARGE_BYTES


class TestOverheadAndSnapshot:
    def test_charge_overhead(self):
        sim = ClusterSimulator(parallel_system(1))
        sim.charge_overhead(0.5)
        assert sim.clock == 0.5
        assert sim.balance_overhead == 0.5

    def test_charge_overhead_not_balance(self):
        sim = ClusterSimulator(parallel_system(1))
        sim.charge_overhead(0.5, as_balance=False)
        assert sim.balance_overhead == 0.0

    def test_negative_overhead_raises(self):
        sim = ClusterSimulator(parallel_system(1))
        with pytest.raises(ValueError):
            sim.charge_overhead(-1.0)

    def test_snapshot_keys(self):
        sim = ClusterSimulator(parallel_system(1))
        snap = sim.snapshot()
        assert set(snap) == {
            "clock", "compute_time", "comm_time", "local_comm_busy",
            "remote_comm_busy", "balance_overhead", "probe_time",
        }
