"""API-surface and edge-case tests across the package."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import quick_run
from repro.amr.solver import AdvectionDriver
from repro.harness import ExperimentConfig, run_experiment, step_timeline


class TestTopLevelAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quick_run_validation(self):
        with pytest.raises(ValueError):
            quick_run("nope")
        with pytest.raises(ValueError):
            quick_run("shockpool3d", scheme_name="nope")

    def test_quick_run_blastwave_parallel(self):
        r = quick_run("blastwave", procs_per_group=1, steps=2,
                      scheme_name="parallel")
        assert r.app == "BlastWave"

    def test_quick_run_amr64_uses_lan(self):
        """The paper's pairing: AMR64 on the LAN system."""
        r = quick_run("amr64", procs_per_group=1, steps=2)
        assert r.total_time > 0


class TestSubpackageExports:
    def test_amr_all(self):
        import repro.amr as m

        for name in m.__all__:
            assert hasattr(m, name), name

    def test_distsys_all(self):
        import repro.distsys as m

        for name in m.__all__:
            assert hasattr(m, name), name

    def test_core_all(self):
        import repro.core as m

        for name in m.__all__:
            assert hasattr(m, name), name

    def test_harness_all(self):
        import repro.harness as m

        for name in m.__all__:
            assert hasattr(m, name), name

    def test_solver_all(self):
        import repro.amr.solver as m

        for name in m.__all__:
            assert hasattr(m, name), name


class TestTimelineEdgeCases:
    def test_static_scheme_timeline_single_bucket(self):
        """No GlobalDecisionEvents -> everything lands in one bucket."""
        cfg = ExperimentConfig(procs_per_group=1, steps=2)
        r = run_experiment(cfg, "static")
        steps = step_timeline(r.events)
        assert len(steps) == 1
        assert steps[0]["compute"] == pytest.approx(r.compute_time)


class TestSolverOtherDims:
    def test_1d_advection_driver(self):
        drv = AdvectionDriver(
            domain_cells=64,
            velocity=(0.5,),
            initial=lambda x: np.exp(-((x - 0.25) ** 2) / (2 * 0.03**2)),
            ndim=1,
            max_levels=2,
            threshold=0.05,
        )
        m0 = drv.total_mass()
        drv.run(8)
        assert drv.total_mass() == pytest.approx(m0, rel=0.05)
        # peak moved right
        pts = np.array([[0.25 + 0.5 * drv.time], [0.25]])
        vals = drv.sample(pts)
        assert vals[0] > vals[1]

    def test_3d_advection_smoke(self):
        drv = AdvectionDriver(
            domain_cells=8,
            velocity=(0.3, 0.0, 0.0),
            initial=lambda x, y, z: np.exp(
                -((x - 0.4) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2) / (2 * 0.1**2)
            ),
            ndim=3,
            max_levels=2,
            threshold=0.2,
        )
        drv.run(2)
        drv.hierarchy.validate()


class TestDescribeStrings:
    def test_application_describe(self):
        from repro.amr.applications import AMR64

        text = AMR64(domain_cells=16).describe()
        assert "AMR64" in text and "16^3" in text

    def test_runresult_summary_lists_redistributions(self):
        cfg = ExperimentConfig(procs_per_group=2, steps=6)
        r = run_experiment(cfg, "distributed")
        assert f"redistributions {r.redistributions}" in r.summary()
