"""Unit tests for the two DLB schemes' policy behaviour.

The paper's central invariants:

* parallel DLB ignores groups -- children can land anywhere;
* distributed DLB never lets a grid leave its group via the local phase
  ("An overloaded processor can migrate its workload to an underloaded
  processor of the same group only") and keeps children with parents
  ("children grids are always located at the same group as their parent
  grids");
* the distributed scheme's global phase is gated by Gain > gamma * Cost.
"""

from __future__ import annotations

import pytest

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.config import SchemeParams, SimParams
from repro.core import DistributedDLB, ParallelDLB
from repro.core.base import BalanceContext
from repro.core.gain import WorkloadHistory
from repro.distsys import ClusterSimulator, ConstantTraffic, wan_system
from repro.distsys.events import GlobalDecisionEvent, RedistributionEvent
from repro.partition import GridAssignment
from repro.runtime import root_blocks


def make_ctx(blocks=(8, 1, 1), n=16, gamma=2.0):
    domain = Box.cube(0, n, 3)
    h = GridHierarchy(domain, 2, 3)
    h.create_root_grids(root_blocks(domain, blocks))
    system = wan_system(2, ConstantTraffic(0.2), base_speed=2e4)
    ctx = BalanceContext(
        hierarchy=h,
        assignment=GridAssignment(h, system),
        system=system,
        sim=ClusterSimulator(system),
        sim_params=SimParams(),
        scheme_params=SchemeParams(gamma=gamma),
        history=WorkloadHistory(),
    )
    return ctx


class TestParallelDLBPolicy:
    def test_initial_distribution_even(self):
        ctx = make_ctx()
        ParallelDLB().initial_distribution(ctx)
        loads = ctx.assignment.level_loads(0)
        assert max(loads.values()) == pytest.approx(min(loads.values()))

    def test_new_grids_scatter_across_groups(self):
        ctx = make_ctx()
        scheme = ParallelDLB()
        scheme.initial_distribution(ctx)
        # create 8 children under a single group-0 parent
        parent = next(
            g for g in ctx.hierarchy.level_grids(0)
            if ctx.assignment.group_of(g.gid) == 0
        )
        new = []
        ref = parent.box.refine(2)
        for i in range(8):
            lo = (ref.lo[0], ref.lo[1] + 2 * i, ref.lo[2])
            hi = (ref.lo[0] + 2, ref.lo[1] + 2 * i + 2, ref.lo[2] + 2)
            new.append(ctx.hierarchy.add_grid(1, Box(lo, hi), parent.gid))
        scheme.place_new_grids(ctx, [g.gid for g in new])
        groups = {ctx.assignment.group_of(g.gid) for g in new}
        assert groups == {0, 1}  # group-oblivious placement

    def test_remote_placement_charged(self):
        ctx = make_ctx()
        scheme = ParallelDLB()
        scheme.initial_distribution(ctx)
        parent = next(
            g for g in ctx.hierarchy.level_grids(0)
            if ctx.assignment.group_of(g.gid) == 0
        )
        child = ctx.hierarchy.add_grid(1, parent.box.refine(2), parent.gid)
        scheme.place_new_grids(ctx, [child.gid])
        # a single child lands on the globally least-loaded processor; the
        # interpolated data may cross the network -> time may be charged
        assert ctx.sim.clock >= 0.0  # placement ran without error
        ctx.assignment.validate()

    def test_local_balance_uses_all_processors(self):
        ctx = make_ctx()
        scheme = ParallelDLB()
        scheme.initial_distribution(ctx)
        # skew everything onto pid 0
        for g in ctx.hierarchy.level_grids(0):
            ctx.assignment.assign(g.gid, 0)
        scheme.local_balance(ctx, 0, 0.0)
        loads = ctx.assignment.level_loads(0)
        assert max(loads.values()) / (sum(loads.values()) / 4) < 1.3

    def test_global_balance_is_noop(self):
        ctx = make_ctx()
        scheme = ParallelDLB()
        scheme.initial_distribution(ctx)
        clock = ctx.sim.clock
        scheme.global_balance(ctx, 0.0)
        assert ctx.sim.clock == clock
        assert ctx.sim.log.of_type(GlobalDecisionEvent) == []


class TestDistributedDLBPolicy:
    def test_initial_distribution_contiguous_by_group(self):
        ctx = make_ctx()
        DistributedDLB().initial_distribution(ctx)
        # walking slabs along x, group id changes exactly once (contiguous)
        groups = [
            ctx.assignment.group_of(g.gid)
            for g in sorted(ctx.hierarchy.level_grids(0), key=lambda g: g.box.lo)
        ]
        changes = sum(1 for a, b in zip(groups, groups[1:]) if a != b)
        assert changes == 1

    def test_new_grids_stay_in_parent_group(self):
        ctx = make_ctx()
        scheme = DistributedDLB()
        scheme.initial_distribution(ctx)
        for parent in ctx.hierarchy.level_grids(0):
            child = ctx.hierarchy.add_grid(1, parent.box.refine(2), parent.gid)
            scheme.place_new_grids(ctx, [child.gid])
            assert (
                ctx.assignment.group_of(child.gid)
                == ctx.assignment.group_of(parent.gid)
            )

    def test_local_balance_never_crosses_groups(self):
        ctx = make_ctx()
        scheme = DistributedDLB()
        scheme.initial_distribution(ctx)
        # skew group 0's grids onto its first processor
        g0_pids = ctx.system.groups[0].pids
        for g in ctx.hierarchy.level_grids(0):
            if ctx.assignment.group_of(g.gid) == 0:
                ctx.assignment.assign(g.gid, g0_pids[0])
        before_groups = {
            g.gid: ctx.assignment.group_of(g.gid)
            for g in ctx.hierarchy.level_grids(0)
        }
        scheme.local_balance(ctx, 0, 0.0)
        after_groups = {
            g.gid: ctx.assignment.group_of(g.gid)
            for g in ctx.hierarchy.level_grids(0)
        }
        assert before_groups == after_groups  # same group before and after
        # but within group 0 the load is now even
        loads = ctx.assignment.level_loads(0)
        g0_loads = [loads[p] for p in g0_pids]
        assert max(g0_loads) / (sum(g0_loads) / len(g0_loads)) < 1.3

    def test_global_balance_requires_history(self):
        ctx = make_ctx()
        scheme = DistributedDLB()
        scheme.initial_distribution(ctx)
        scheme.global_balance(ctx, 0.0)
        ev = ctx.sim.log.of_type(GlobalDecisionEvent)
        assert len(ev) == 1
        assert not ev[0].invoked  # no history yet -> no action

    def _imbalanced_ctx(self, gamma):
        ctx = make_ctx(gamma=gamma)
        scheme = DistributedDLB()
        scheme.initial_distribution(ctx)
        # skew the actual level-0 ownership: 6 of 8 slabs on group 0
        slabs = sorted(ctx.hierarchy.level_grids(0), key=lambda g: g.box.lo)
        for i, g in enumerate(slabs):
            ctx.assignment.assign(g.gid, 0 if i < 6 else 2)
        # matching history: group 0 worked 3x harder, steps are expensive
        loads = {p: 0.0 for p in range(4)}
        loads[0] = 300.0
        loads[2] = 100.0
        ctx.history.record_solve(0, loads)
        ctx.history.end_coarse_step(walltime=100.0)
        return ctx, scheme

    def test_gate_fires_with_cheap_cost(self):
        ctx, scheme = self._imbalanced_ctx(gamma=2.0)
        scheme.global_balance(ctx, 1.0)
        ev = ctx.sim.log.of_type(GlobalDecisionEvent)[-1]
        assert ev.imbalance_detected
        assert ev.invoked
        assert ctx.sim.log.of_type(RedistributionEvent)
        assert scheme.cost_model.nmeasurements == 1  # delta recorded

    def test_gate_blocked_by_huge_gamma(self):
        ctx, scheme = self._imbalanced_ctx(gamma=1e9)
        scheme.global_balance(ctx, 1.0)
        ev = ctx.sim.log.of_type(GlobalDecisionEvent)[-1]
        assert ev.imbalance_detected
        assert not ev.invoked
        assert not ctx.sim.log.of_type(RedistributionEvent)

    def test_probe_runs_only_when_imbalanced(self):
        ctx = make_ctx()
        scheme = DistributedDLB()
        scheme.initial_distribution(ctx)
        # balanced history
        ctx.history.record_solve(0, {0: 10.0, 1: 10.0, 2: 10.0, 3: 10.0})
        ctx.history.end_coarse_step(10.0)
        scheme.global_balance(ctx, 1.0)
        assert ctx.sim.probe_time == 0.0  # no probe when balanced

    def test_single_group_system_noop(self):
        from repro.distsys import parallel_system

        system = parallel_system(4, base_speed=2e4)
        domain = Box.cube(0, 16, 3)
        h = GridHierarchy(domain, 2, 3)
        h.create_root_grids(root_blocks(domain, (8, 1, 1)))
        ctx = BalanceContext(
            hierarchy=h, assignment=GridAssignment(h, system), system=system,
            sim=ClusterSimulator(system), history=WorkloadHistory(),
        )
        scheme = DistributedDLB()
        scheme.initial_distribution(ctx)
        scheme.global_balance(ctx, 0.0)
        assert len(ctx.sim.log) == 0
