"""Last-mile edge cases across the runtime and harness."""

from __future__ import annotations

import pytest

from repro.amr.box import Box
from repro.harness import ExperimentConfig, run_experiment
from repro.runtime import default_blocks_per_axis, root_blocks


class TestDefaultBlocks:
    def test_respects_min_block_width(self):
        """Never creates blocks thinner than 2 cells."""
        counts = default_blocks_per_axis(Box.cube(0, 8, 3), nprocs=64)
        domain = Box.cube(0, 8, 3)
        for b in root_blocks(domain, counts):
            assert min(b.shape) >= 2

    def test_single_processor_still_splits_for_granularity(self):
        counts = default_blocks_per_axis(Box.cube(0, 16, 3), nprocs=1)
        total = counts[0] * counts[1] * counts[2]
        assert total >= 4

    def test_non_power_of_two_domain(self):
        """Axis counts must divide the domain size exactly."""
        domain = Box((0, 0), (12, 10))
        counts = default_blocks_per_axis(domain, nprocs=2)
        for d in range(2):
            assert domain.shape[d] % counts[d] == 0

    def test_tiny_domain_caps_out(self):
        counts = default_blocks_per_axis(Box.cube(0, 4, 2), nprocs=100)
        # cannot exceed 2x2 blocks of width 2
        assert counts[0] <= 2 and counts[1] <= 2

    def test_2d_domain(self):
        counts = default_blocks_per_axis(Box.cube(0, 32, 2), nprocs=4)
        assert len(counts) == 2
        assert counts[0] * counts[1] >= 16


class TestOneStepRuns:
    """Smallest possible runs of every scheme complete and account sanely."""

    @pytest.mark.parametrize("scheme", ["parallel", "distributed", "static"])
    def test_single_step_single_proc_pair(self, scheme):
        cfg = ExperimentConfig(procs_per_group=1, steps=1)
        r = run_experiment(cfg, scheme)
        assert r.nsteps == 1
        assert r.total_time > 0
        assert r.compute_time > 0
        # wall clock is never less than any single component
        for part in (r.compute_time, r.comm_time, r.balance_overhead):
            assert part <= r.total_time + 1e-9

    def test_two_levels_only(self):
        cfg = ExperimentConfig(procs_per_group=1, steps=2, max_levels=2)
        r = run_experiment(cfg, "distributed")
        assert r.total_time > 0

    def test_single_level_degenerates_gracefully(self):
        """max_levels=1: no refinement, no fine traffic, pure level-0 run."""
        cfg = ExperimentConfig(procs_per_group=2, steps=2, max_levels=1)
        r = run_experiment(cfg, "distributed")
        assert r.final_grids == len(
            root_blocks(Box.cube(0, 16, 3),
                        default_blocks_per_axis(Box.cube(0, 16, 3), 4))
        )
        assert r.remote_bytes_by_kind.get("parent_child", 0.0) == 0.0

    def test_blastwave_two_sites_static(self):
        cfg = ExperimentConfig(app_name="blastwave", procs_per_group=2, steps=2)
        r = run_experiment(cfg, "static")
        assert r.total_time > 0


class TestTrafficKinds:
    @pytest.mark.parametrize("kind", ["none", "constant", "diurnal", "bursty"])
    def test_every_traffic_kind_runs(self, kind):
        cfg = ExperimentConfig(procs_per_group=1, steps=2, traffic_kind=kind)
        r = run_experiment(cfg, "distributed")
        assert r.total_time > 0

    def test_dedicated_network_is_fastest(self):
        quiet = run_experiment(
            ExperimentConfig(procs_per_group=2, steps=3, traffic_kind="none"),
            "parallel",
        )
        busy = run_experiment(
            ExperimentConfig(procs_per_group=2, steps=3, traffic_kind="constant",
                             traffic_level=0.6),
            "parallel",
        )
        assert quiet.total_time < busy.total_time
