"""Unit tests for the regridding pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.amr.regrid import RegridParams, assemble_flags, regrid_level
from repro.runtime import root_blocks


class BoxFlagApp:
    """Test application flagging a fixed box (in level-0 physical coords)."""

    name = "boxflag"

    def __init__(self, flag_box_level0, domain_cells=16, max_levels=3):
        self.flag_box = flag_box_level0
        self.domain_cells = domain_cells
        self.refinement_ratio = 2
        self.max_levels = max_levels
        self.domain = Box.cube(0, domain_cells, 3)

    def flags(self, level, box, time):
        target = self.flag_box.refine(2**level)
        out = np.zeros(box.shape, dtype=bool)
        inter = box.intersection(target)
        if not inter.is_empty:
            out[inter.slices(origin=box.lo)] = True
        return out

    def work_per_cell(self, level):
        return 1.0


def fresh(app):
    h = GridHierarchy(app.domain, 2, app.max_levels)
    h.create_root_grids(root_blocks(app.domain, (4, 1, 1)))
    return h


class TestAssembleFlags:
    def test_collects_from_all_roots(self):
        app = BoxFlagApp(Box((2, 2, 2), (6, 6, 6)))
        h = fresh(app)
        field = assemble_flags(h, app, 0, 0.0)
        assert field.nflagged == 4**3

    def test_shape_mismatch_raises(self):
        class BadApp(BoxFlagApp):
            def flags(self, level, box, time):
                return np.zeros((1, 1, 1), dtype=bool)

        app = BadApp(Box((0, 0, 0), (2, 2, 2)))
        h = fresh(app)
        with pytest.raises(ValueError):
            assemble_flags(h, app, 0, 0.0)


class TestRegridLevel:
    def test_creates_children_covering_flags(self):
        app = BoxFlagApp(Box((3, 3, 3), (6, 6, 6)))
        h = fresh(app)
        created = regrid_level(h, app, 0, 0.0)
        assert created
        h.validate()
        # the flagged region (buffered by 1) must be covered at level 1
        flagged = Box((3, 3, 3), (6, 6, 6)).refine(2)
        covered = 0
        for g in h.level_grids(1):
            covered += g.box.intersection(flagged).ncells
        assert covered == flagged.ncells

    def test_no_flags_no_children(self):
        app = BoxFlagApp(Box((0, 0, 0), (0, 2, 2)))  # empty flag box
        h = fresh(app)
        assert regrid_level(h, app, 0, 0.0) == []

    def test_regrid_replaces_old_level(self):
        app = BoxFlagApp(Box((3, 3, 3), (6, 6, 6)))
        h = fresh(app)
        first = regrid_level(h, app, 0, 0.0)
        second = regrid_level(h, app, 0, 0.0)
        for g in first:
            assert not h.has_grid(g.gid)
        for g in second:
            assert h.has_grid(g.gid)

    def test_children_split_at_parent_boundaries(self):
        # flag a box straddling the boundary between root slabs at x=4
        app = BoxFlagApp(Box((2, 2, 2), (7, 6, 6)))
        h = fresh(app)
        created = regrid_level(h, app, 0, 0.0)
        h.validate()  # nesting in a single parent each
        parents = {g.parent_gid for g in created}
        assert len(parents) >= 2  # pieces on both sides of x=4

    def test_max_level_is_respected(self):
        app = BoxFlagApp(Box((2, 2, 2), (6, 6, 6)), max_levels=2)
        h = fresh(app)
        regrid_level(h, app, 0, 0.0)
        assert regrid_level(h, app, 1, 0.0) == []

    def test_recursive_levels(self):
        app = BoxFlagApp(Box((2, 2, 2), (8, 8, 8)), max_levels=3)
        h = fresh(app)
        regrid_level(h, app, 0, 0.0)
        created2 = regrid_level(h, app, 1, 0.0)
        assert created2
        h.validate()
        for g in created2:
            assert g.level == 2

    def test_work_per_cell_taken_from_app(self):
        class Heavy(BoxFlagApp):
            def work_per_cell(self, level):
                return 3.0 if level > 0 else 1.0

        app = Heavy(Box((2, 2, 2), (5, 5, 5)))
        h = fresh(app)
        created = regrid_level(h, app, 0, 0.0)
        assert all(g.work_per_cell == 3.0 for g in created)

    def test_buffering_expands_refined_region(self):
        app = BoxFlagApp(Box((4, 4, 4), (6, 6, 6)))
        h = fresh(app)
        no_buffer = RegridParams(buffer_width=0)
        wide_buffer = RegridParams(buffer_width=2)
        cells_no = sum(g.ncells for g in regrid_level(h, app, 0, 0.0, no_buffer))
        cells_wide = sum(g.ncells for g in regrid_level(h, app, 0, 0.0, wide_buffer))
        assert cells_wide > cells_no

    def test_min_piece_cells_drops_slivers(self):
        app = BoxFlagApp(Box((3, 3, 3), (5, 5, 5)))
        h = fresh(app)
        params = RegridParams(min_piece_cells=10_000)  # absurd: drop all
        assert regrid_level(h, app, 0, 0.0, params) == []
