"""Tests for the per-figure regeneration functions (small configurations)."""

from __future__ import annotations

import pytest

from repro.harness import ExperimentConfig
from repro.harness.figures import (
    fig1_hierarchy,
    fig2_integration_order,
    fig3_parallel_vs_distributed,
    fig4_flowchart_trace,
    fig5_balance_points,
    fig6_global_redistribution,
    fig7_execution_time,
    fig8_efficiency,
)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_hierarchy(domain_cells=16, max_levels=4)

    def test_four_levels_exist(self, result):
        assert len(result.levels) == 4
        assert all(ngrids > 0 for _, ngrids, _ in result.levels)

    def test_hierarchy_valid(self, result):
        result.hierarchy.validate()

    def test_render_mentions_levels(self, result):
        assert "level" in result.render()


class TestFig2:
    def test_matches_paper(self):
        r = fig2_integration_order()
        assert r.matches_paper
        assert len(r.order) == 15

    def test_render_labels_steps(self):
        out = fig2_integration_order().render()
        assert "15" in out and "level 3" in out


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        base = ExperimentConfig(app_name="shockpool3d", steps=2)
        return fig3_parallel_vs_distributed(configs=(1, 2), base=base)

    def test_compute_similar_comm_blows_up(self, result):
        """Section 3: 'times for parallel computation and distributed
        computation are similar [...] times for distributed communication
        are much larger'."""
        for row in result.rows:
            assert row.distributed_compute == pytest.approx(
                row.parallel_compute, rel=0.5
            )
            assert row.distributed_comm > 2 * row.parallel_comm

    def test_render(self, result):
        assert "Fig. 3" in result.render()


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_flowchart_trace(
            ExperimentConfig(procs_per_group=2, steps=3)
        )

    def test_one_decision_per_coarse_step(self, result):
        assert result.ndecisions == 3

    def test_redistributions_subset_of_decisions(self, result):
        assert 0 <= result.nredistributions <= result.ndecisions

    def test_local_balances_happen(self, result):
        assert result.nlocal_balances > 0

    def test_render_shows_gate(self, result):
        assert "gain>gamma*cost?" in result.render()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_balance_points()

    def test_one_global_per_coarse_step(self, result):
        assert result.globals_per_coarse_step == 1

    def test_local_marks_only_after_coarser_steps(self, result):
        """Local balancing appears after steps that regrid a finer level
        (levels 0..max-2), never after finest-level steps."""
        max_level = max(l for _, l, _ in result.steps)
        for _seq, level, marks in result.steps:
            if level == max_level:
                assert all("local" not in m for m in marks)

    def test_first_step_is_level0(self, result):
        assert result.steps[0][1] == 0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_global_redistribution()

    def test_moves_from_overloaded_to_underloaded(self, result):
        assert result.moved_grids > 0
        assert result.moved_cells > 0

    def test_imbalance_reduced(self, result):
        assert result.imbalance(result.after) < result.imbalance(result.before)

    def test_render(self, result):
        assert "Fig. 6" in result.render()


class TestFig7Small:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_execution_time("shockpool3d", configs=(2, 4), steps=3)

    def test_all_improvements_positive(self, result):
        assert all(i > 0 for i in result.sweep.improvements)

    def test_improvement_grows(self, result):
        imps = result.sweep.improvements
        assert imps[-1] > imps[0]

    def test_render_compares_with_paper(self, result):
        out = result.render()
        assert "paper" in out
        assert "improvement" in out


class TestFig8Small:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_efficiency("shockpool3d", configs=(2,), steps=3)

    def test_efficiency_gain_positive(self, result):
        lo, hi = result.measured_range
        assert hi > 0

    def test_efficiencies_sane(self, result):
        for _label, e_par, e_dist, _gain in result.efficiency_rows():
            assert 0 < e_par <= 1.2
            assert 0 < e_dist <= 1.2

    def test_render(self, result):
        assert "Fig. 8" in result.render()
