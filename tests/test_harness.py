"""Unit tests for the experiment harness (configs, sweeps, reports)."""

from __future__ import annotations

import pytest

from repro.distsys.traffic import (
    BurstyTraffic,
    ConstantTraffic,
    DiurnalTraffic,
    NoTraffic,
)
from repro.harness import (
    ExperimentConfig,
    format_percent,
    format_table,
    make_app,
    make_scheme,
    make_system,
    make_traffic,
    run_paired,
    run_sweep,
)
from repro.harness.report import comparison_block


class TestExperimentConfig:
    def test_label(self):
        assert ExperimentConfig(procs_per_group=4).label == "4+4"

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(app_name="nope")
        with pytest.raises(ValueError):
            ExperimentConfig(network="nope")
        with pytest.raises(ValueError):
            ExperimentConfig(procs_per_group=0)
        with pytest.raises(ValueError):
            ExperimentConfig(steps=0)

    def test_gamma_flows_into_scheme_params(self):
        cfg = ExperimentConfig(gamma=5.0)
        assert cfg.effective_scheme_params().gamma == 5.0


class TestFactories:
    def test_make_traffic_kinds(self):
        assert isinstance(make_traffic(ExperimentConfig(traffic_kind="none")), NoTraffic)
        assert isinstance(
            make_traffic(ExperimentConfig(traffic_kind="constant")), ConstantTraffic
        )
        assert isinstance(
            make_traffic(ExperimentConfig(traffic_kind="diurnal")), DiurnalTraffic
        )
        assert isinstance(
            make_traffic(ExperimentConfig(traffic_kind="bursty")), BurstyTraffic
        )

    def test_make_app_names(self):
        for name in ("shockpool3d", "amr64", "blastwave"):
            app = make_app(ExperimentConfig(app_name=name, domain_cells=16))
            assert app.domain_cells == 16

    def test_make_system_shapes(self):
        wan = make_system(ExperimentConfig(network="wan", procs_per_group=3))
        assert wan.ngroups == 2 and wan.nprocs == 6
        par = make_system(ExperimentConfig(network="parallel", procs_per_group=3))
        assert par.ngroups == 1 and par.nprocs == 6

    def test_make_scheme(self):
        assert make_scheme("parallel").name == "parallel DLB"
        assert make_scheme("distributed").name == "distributed DLB"
        with pytest.raises(ValueError):
            make_scheme("nope")


class TestSweep:
    @pytest.fixture(scope="class")
    def paired(self):
        cfg = ExperimentConfig(
            app_name="shockpool3d", network="wan", procs_per_group=2, steps=2
        )
        return run_paired(cfg, with_sequential=True)

    def test_paired_runs_both_schemes(self, paired):
        assert paired.parallel.scheme == "parallel DLB"
        assert paired.distributed.scheme == "distributed DLB"
        assert paired.sequential is not None

    def test_efficiencies_in_unit_interval(self, paired):
        assert 0 < paired.distributed_efficiency <= 1.2
        assert 0 < paired.parallel_efficiency <= 1.2

    def test_nprocs(self, paired):
        assert paired.nprocs == 4

    def test_sweep_shares_sequential(self):
        cfg = ExperimentConfig(steps=2)
        sw = run_sweep(cfg, procs_per_group=(1, 2), with_sequential=True)
        assert sw.pairs[0].sequential is sw.pairs[1].sequential
        assert len(sw.improvements) == 2
        assert sw.by_label()["1+1"] is sw.pairs[0]

    def test_sequential_missing_raises(self):
        cfg = ExperimentConfig(steps=2)
        sw = run_sweep(cfg, procs_per_group=(1,), with_sequential=False)
        with pytest.raises(ValueError):
            sw.pairs[0].parallel_efficiency


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [("a", 1.0), ("bb", 20.5)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "20.500" in out

    def test_format_table_title(self):
        out = format_table(["x"], [(1,)], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_table_ragged_rows_raise(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_format_table_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_format_table_stable(self):
        rows = [("x", 1.0), ("y", 2.0)]
        assert format_table(["k", "v"], rows) == format_table(["k", "v"], rows)

    def test_format_percent(self):
        assert format_percent(0.297) == "29.7%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_comparison_block(self):
        out = comparison_block("Fig. 7", "9-46%", "11-33%", "shape holds")
        assert "paper:" in out and "measured:" in out and "verdict:" in out
