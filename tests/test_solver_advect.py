"""Tests for donor-cell advection and the self-adapting driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.box import Box
from repro.amr.grid import Grid
from repro.amr.solver import (
    AdvectionDriver,
    GradientCriterion,
    GridData,
    advect_donor_cell,
    cfl_number,
)


class TestCFL:
    def test_value(self):
        assert cfl_number([0.5, -1.0], dt=0.1, dx=0.2) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            cfl_number([1.0], dt=0.0, dx=1.0)


def make_data(values, nghost=1):
    arr = np.asarray(values, dtype=float)
    g = Grid(gid=0, level=0, box=Box((0,) * arr.ndim, arr.shape))
    gd = GridData(g, nghost=nghost)
    gd.interior = arr
    # fill ghosts by clamping for the single-grid tests
    from repro.amr.solver.ops import _clamp_remaining

    gd.invalidate_ghosts()
    _clamp_remaining(gd)
    return gd


class TestDonorCell:
    def test_uniform_field_unchanged(self):
        gd = make_data(np.full((8, 8), 3.0))
        advect_donor_cell(gd, (0.7, -0.3), dt=0.1, dx=0.1)
        assert np.allclose(gd.interior, 3.0)

    def test_step_moves_downwind(self):
        u = np.zeros(16)
        u[:8] = 1.0
        gd = make_data(u)
        # CFL = 1: the profile shifts exactly one cell per step
        advect_donor_cell(gd, (1.0,), dt=0.1, dx=0.1)
        expected = np.zeros(16)
        expected[:9] = 1.0
        assert np.allclose(gd.interior, expected)

    def test_negative_velocity_moves_left(self):
        u = np.zeros(16)
        u[8:] = 1.0
        gd = make_data(u)
        advect_donor_cell(gd, (-1.0,), dt=0.1, dx=0.1)
        expected = np.zeros(16)
        expected[7:] = 1.0
        assert np.allclose(gd.interior, expected)

    def test_zero_velocity_identity(self):
        rng = np.random.default_rng(0)
        u = rng.random((6, 6))
        gd = make_data(u)
        advect_donor_cell(gd, (0.0, 0.0), dt=0.5, dx=0.1)
        assert np.allclose(gd.interior, u)

    def test_cfl_violation_raises(self):
        gd = make_data(np.zeros(8))
        with pytest.raises(ValueError):
            advect_donor_cell(gd, (2.0,), dt=0.1, dx=0.1)

    def test_velocity_rank_checked(self):
        gd = make_data(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            advect_donor_cell(gd, (1.0,), dt=0.01, dx=0.1)

    def test_interior_conserved_periodic_analogue(self):
        """With zero inflow/outflow difference (uniform ghosts), the total
        changes only through the boundaries."""
        u = np.zeros(16)
        u[6:10] = 1.0  # blob far from boundaries
        gd = make_data(u)
        before = gd.total()
        advect_donor_cell(gd, (1.0,), dt=0.05, dx=0.1)
        assert gd.total() == pytest.approx(before)


class TestGradientCriterion:
    def test_flags_jump(self):
        u = np.zeros((8, 8))
        u[:, :4] = 1.0
        flags = GradientCriterion(0.5).flag(u)
        assert flags[:, 3].all() and flags[:, 4].all()
        assert not flags[:, 0].any() and not flags[:, 7].any()

    def test_smooth_field_unflagged(self):
        x = np.linspace(0, 1, 32)
        u = np.tile(x * 0.1, (4, 1))
        assert not GradientCriterion(0.5).flag(u).any()

    def test_bad_threshold_raises(self):
        with pytest.raises(ValueError):
            GradientCriterion(0.0)


def gaussian2d(x, y):
    return np.exp(-((x - 0.3) ** 2 + (y - 0.3) ** 2) / (2 * 0.05**2))


class TestAdvectionDriver:
    @pytest.fixture(scope="class")
    def driver(self):
        drv = AdvectionDriver(
            domain_cells=32, velocity=(0.5, 0.25), initial=gaussian2d,
            ndim=2, max_levels=3, threshold=0.05,
        )
        drv.run(8)
        return drv

    def test_initial_adaptation_refines_blob(self):
        drv = AdvectionDriver(
            domain_cells=32, velocity=(0.5, 0.0), initial=gaussian2d,
            ndim=2, max_levels=3, threshold=0.05,
        )
        assert drv.hierarchy.level_grids(1), "blob should trigger refinement"
        # the fine grids sit on the blob (0.3, 0.3)
        fine = drv.hierarchy.level_grids(1)[0]
        h1 = drv.cell_width(1)
        center = fine.box.center()
        assert abs(center[0] * h1 - 0.3) < 0.15
        assert abs(center[1] * h1 - 0.3) < 0.15

    def test_mass_nearly_conserved(self, driver):
        """Donor-cell is conservative; coarse-fine boundaries without
        refluxing leak only a little."""
        drv = AdvectionDriver(
            domain_cells=32, velocity=(0.5, 0.25), initial=gaussian2d,
            ndim=2, max_levels=3, threshold=0.05,
        )
        m0 = drv.total_mass()
        drv.run(8)
        assert drv.total_mass() == pytest.approx(m0, rel=0.05)

    def test_blob_moves_with_velocity(self, driver):
        t = driver.time
        moved = np.array([0.3 + 0.5 * t, 0.3 + 0.25 * t])
        vals = driver.sample(np.array([moved, [0.3, 0.3], [0.9, 0.9]]))
        assert vals[0] > 5 * max(vals[1], 1e-6)  # peak followed the flow
        assert vals[2] == pytest.approx(0.0, abs=1e-6)

    def test_refinement_follows_blob(self, driver):
        t = driver.time
        moved_x = 0.3 + 0.5 * t
        fine_grids = driver.hierarchy.level_grids(driver.hierarchy.nlevels - 1)
        assert fine_grids
        h = driver.cell_width(driver.hierarchy.nlevels - 1)
        centers_x = [g.box.center()[0] * h for g in fine_grids]
        assert min(abs(c - moved_x) for c in centers_x) < 0.2

    def test_hierarchy_valid_after_run(self, driver):
        driver.hierarchy.validate()
        # every grid has data; every data belongs to a live grid
        gids = {g.gid for g in driver.hierarchy.all_grids()}
        assert set(driver.data) == gids

    def test_uniform_field_stays_uniform(self):
        drv = AdvectionDriver(
            domain_cells=16, velocity=(0.6, -0.2), initial=lambda x, y: 0.0 * x + 1.0,
            ndim=2, max_levels=3, threshold=0.1,
        )
        drv.run(4)
        for gd in drv.data.values():
            assert np.allclose(gd.interior, 1.0)
        # nothing to refine on a constant field
        assert not drv.hierarchy.level_grids(1)

    def test_matches_single_grid_reference(self):
        """AMR solution agrees with an unrefined run of the same scheme at
        the coarse resolution (sampled off the refined region)."""
        kwargs = dict(domain_cells=32, velocity=(0.5, 0.0), initial=gaussian2d,
                      ndim=2)
        amr = AdvectionDriver(max_levels=3, threshold=0.05, **kwargs)
        ref = AdvectionDriver(max_levels=1, threshold=1e9, **kwargs)
        amr.run(6)
        ref.run(6)
        pts = np.array([[0.8, 0.8], [0.1, 0.9], [0.5, 0.1]])  # smooth regions
        assert np.allclose(amr.sample(pts), ref.sample(pts), atol=1e-6)

    def test_cfl_guard(self):
        with pytest.raises(ValueError):
            AdvectionDriver(domain_cells=16, velocity=(1.0, 0.0),
                            initial=gaussian2d, ndim=2, dt0=1.0)

    def test_velocity_rank_validated(self):
        with pytest.raises(ValueError):
            AdvectionDriver(domain_cells=16, velocity=(1.0,),
                            initial=gaussian2d, ndim=2)
