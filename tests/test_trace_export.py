"""End-to-end tracing: paired run -> valid Chrome trace; tracing is opt-in.

Two guarantees pinned here:

* a traced paired run exports schema-valid Chrome trace-event JSON in
  which every :class:`GlobalDecisionEvent` of the distributed run has a
  matching ``global_balance`` span carrying the decision's ``gain`` /
  ``cost`` / ``redistributed`` attributes;
* tracing is strictly opt-in -- untraced runs carry no spans/metrics and
  are bit-identical to the pre-observability seed path, traced runs do
  not perturb the simulated results.
"""

import dataclasses
import json

import pytest

from repro.api import (
    ExperimentConfig,
    SerialExecutor,
    Tracer,
    run_experiment,
    run_paired,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.distsys.events import GlobalDecisionEvent

SMALL = ExperimentConfig(procs_per_group=2, steps=3)


@pytest.fixture(scope="module")
def traced():
    tracer = Tracer()
    pair = run_paired(SMALL, tracer=tracer)
    return tracer, pair


class TestChromeExport:
    def test_export_is_schema_valid(self, traced, tmp_path):
        tracer, _ = traced
        path = tmp_path / "pair_trace.json"
        write_chrome_trace(tracer.records(), path)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert len(payload["traceEvents"]) > 0

    def test_one_track_per_run(self, traced):
        tracer, _ = traced
        tracks = {r.track for r in tracer.records()}
        assert tracks == {"shockpool3d 2+2 [parallel]",
                         "shockpool3d 2+2 [distributed]"}

    def test_every_decision_has_matching_global_balance_span(self, traced):
        tracer, pair = traced
        decisions = pair.distributed.events.of_type(GlobalDecisionEvent)
        assert decisions, "distributed run must log decisions"
        spans = [r for r in tracer.records()
                 if r.name == "global_balance" and "[distributed]" in r.track]
        assert len(spans) == len(decisions)
        for decision, span in zip(decisions, sorted(spans,
                                                    key=lambda s: s.sim_start)):
            assert span.attrs["gain"] == pytest.approx(decision.gain)
            assert span.attrs["cost"] == pytest.approx(decision.cost)
            assert span.attrs["invoked"] == decision.invoked
            assert "redistributed" in span.attrs
            assert "step" in span.attrs

    def test_span_clocks_are_consistent(self, traced):
        tracer, _ = traced
        for rec in tracer.records():
            assert rec.sim_end >= rec.sim_start
            assert rec.wall_end >= rec.wall_start

    def test_traced_result_carries_metrics_snapshot(self, traced):
        _, pair = traced
        metrics = pair.distributed.metrics
        assert metrics is not None
        assert metrics["counters"]["dlb.decisions"] > 0
        assert "run.total_time" in metrics["gauges"]


class TestTracingIsOptIn:
    def test_untraced_results_carry_no_observability_payload(self):
        r = run_experiment(SMALL, "distributed")
        assert r.spans is None
        assert r.metrics is None

    def test_traced_equals_untraced_bit_for_bit(self, traced):
        _, pair = traced
        untraced = run_paired(SMALL, executor=SerialExecutor())
        for traced_r, plain_r in ((pair.parallel, untraced.parallel),
                                  (pair.distributed, untraced.distributed)):
            for f in dataclasses.fields(type(plain_r)):
                if f.name in ("spans", "metrics"):
                    continue
                if f.name == "events":
                    assert [dataclasses.asdict(e) for e in traced_r.events] \
                        == [dataclasses.asdict(e) for e in plain_r.events]
                    continue
                assert getattr(traced_r, f.name) == getattr(plain_r, f.name), \
                    f.name

    def test_disabled_tracer_leaves_result_untouched(self):
        from repro.obs import NULL_TRACER

        assert NULL_TRACER.enabled is False
        a = run_experiment(SMALL, "distributed")
        b = run_experiment(SMALL, "distributed")
        assert a.total_time == b.total_time
        assert list(map(type, a.events)) == list(map(type, b.events))
