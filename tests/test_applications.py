"""Unit tests for the synthetic SAMR applications."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.applications import AMR64, BlastWave, ShockPool3D
from repro.amr.box import Box


class TestBaseGeometry:
    def test_cells_per_axis(self):
        app = ShockPool3D(domain_cells=16, refinement_ratio=2)
        assert app.cells_per_axis(0) == 16
        assert app.cells_per_axis(2) == 64

    def test_cell_width(self):
        app = ShockPool3D(domain_cells=16)
        assert app.cell_width(0) == pytest.approx(1 / 16)
        assert app.cell_width(1) == pytest.approx(1 / 32)

    def test_cell_centers_broadcastable(self):
        app = ShockPool3D(domain_cells=16)
        box = Box((0, 0, 0), (4, 2, 3))
        cx, cy, cz = app.cell_centers(0, box)
        assert cx.shape == (4, 1, 1)
        assert cy.shape == (1, 2, 1)
        assert cz.shape == (1, 1, 3)
        assert cx[0, 0, 0] == pytest.approx(0.5 / 16)

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            ShockPool3D(domain_cells=1)
        with pytest.raises(ValueError):
            ShockPool3D(speed=0)

    def test_describe_mentions_name(self):
        assert "ShockPool3D" in ShockPool3D().describe()


class TestShockPool3D:
    def test_flags_shape(self):
        app = ShockPool3D(domain_cells=16)
        box = Box((0, 0, 0), (8, 8, 8))
        f = app.flags(0, box, 0.0)
        assert f.shape == box.shape
        assert f.dtype == bool

    def test_front_moves_with_time(self):
        app = ShockPool3D(domain_cells=16, speed=0.1, start=0.2)
        assert app.front_position(0.0) == pytest.approx(0.2)
        assert app.front_position(2.0) == pytest.approx(0.4)

    def test_flagged_region_tracks_front(self):
        app = ShockPool3D(domain_cells=32, tilt=0.0, speed=0.1, start=0.25,
                          wake_cells=0.0)
        dom = app.domain
        f0 = app.flags(0, dom, 0.0)
        f1 = app.flags(0, dom, 2.5)  # front at 0.5
        # centroid of flagged cells moves along +x
        x0 = np.argwhere(f0)[:, 0].mean()
        x1 = np.argwhere(f1)[:, 0].mean()
        assert x1 > x0

    def test_untilted_plane_is_axis_aligned_slab(self):
        app = ShockPool3D(domain_cells=16, tilt=0.0, wake_cells=0.0)
        f = app.flags(0, app.domain, 0.0)
        # every yz-plane is either fully flagged or fully clear
        per_x = f.reshape(16, -1)
        assert all(col.all() or not col.any() for col in per_x)

    def test_finer_levels_are_thinner_in_physical_units(self):
        app = ShockPool3D(domain_cells=16, wake_cells=0.0)
        frac0 = app.flag_fraction(0, 0.0)
        frac2 = app.flag_fraction(2, 0.0)
        assert frac2 < frac0

    def test_wake_grows_workload_over_time(self):
        app = ShockPool3D(domain_cells=16, wake_cells=4.0, speed=0.05)
        early = app.flag_fraction(0, 0.0)
        late = app.flag_fraction(0, 6.0)
        assert late > early

    def test_flags_deterministic(self):
        app = ShockPool3D(domain_cells=16)
        f1 = app.flags(1, Box.cube(0, 32, 3), 1.0)
        f2 = app.flags(1, Box.cube(0, 32, 3), 1.0)
        assert (f1 == f2).all()


class TestAMR64:
    def test_deterministic_given_seed(self):
        a = AMR64(domain_cells=16, seed=5)
        b = AMR64(domain_cells=16, seed=5)
        assert (a.centers0 == b.centers0).all()
        f1 = a.flags(0, a.domain, 1.0)
        f2 = b.flags(0, b.domain, 1.0)
        assert (f1 == f2).all()

    def test_different_seeds_differ(self):
        a = AMR64(domain_cells=16, seed=1)
        b = AMR64(domain_cells=16, seed=2)
        assert not (a.centers0 == b.centers0).all()

    def test_clumps_scattered_across_domain(self):
        """The paper: grids 'randomly distributed across the whole domain'."""
        app = AMR64(domain_cells=16, nclumps=24, seed=3)
        f = app.flags(0, app.domain, 0.0)
        idx = np.argwhere(f)
        # flagged cells appear in both halves of every axis
        for d in range(3):
            assert (idx[:, d] < 8).any() and (idx[:, d] >= 8).any()

    def test_radii_grow_with_time(self):
        app = AMR64(domain_cells=16, growth=0.1)
        r0 = app.clump_radii(0, 0.0)
        r5 = app.clump_radii(0, 5.0)
        assert (r5 > r0).all()

    def test_radii_shrink_with_level(self):
        app = AMR64(domain_cells=16, level_shrink=0.5)
        assert (app.clump_radii(2, 0.0) < app.clump_radii(0, 0.0)).all()

    def test_centers_wrap_periodically(self):
        app = AMR64(domain_cells=16)
        c = app.clump_centers(1000.0)
        assert ((c >= 0) & (c < 1)).all()

    def test_elliptic_cost_heavier_than_hyperbolic(self):
        app = AMR64()
        shock = ShockPool3D()
        assert app.work_per_cell(1) > shock.work_per_cell(1)

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            AMR64(nclumps=0)
        with pytest.raises(ValueError):
            AMR64(level_shrink=0.0)
        with pytest.raises(ValueError):
            AMR64(base_radius=-1)


class TestBlastWave:
    def test_radius_grows(self):
        app = BlastWave(speed=0.1, start_radius=0.1)
        assert app.radius(2.0) == pytest.approx(0.3)

    def test_shell_is_hollow(self):
        app = BlastWave(domain_cells=32, start_radius=0.25, thickness_cells=1.0)
        f = app.flags(0, app.domain, 0.0)
        center = f[15:17, 15:17, 15:17]
        assert not center.any()  # interior of the shell unflagged
        assert f.any()

    def test_shell_symmetric_about_center(self):
        app = BlastWave(domain_cells=16, start_radius=0.3)
        f = app.flags(0, app.domain, 0.0)
        assert (f == f[::-1, :, :]).all()
        assert (f == f[:, ::-1, :]).all()

    def test_workload_grows_with_radius(self):
        app = BlastWave(domain_cells=32, start_radius=0.05, speed=0.05)
        early = app.flag_fraction(0, 0.0)
        later = app.flag_fraction(0, 4.0)
        assert later > early

    def test_custom_center_validated(self):
        with pytest.raises(ValueError):
            BlastWave(center=[0.5, 0.5])  # wrong rank for 3-d
