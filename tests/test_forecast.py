"""Unit tests for the NWS-style forecasters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast import (
    AdaptiveForecaster,
    ExponentialSmoothingForecaster,
    LastValueForecaster,
    SlidingMeanForecaster,
    SlidingMedianForecaster,
)


class TestLastValue:
    def test_none_before_data(self):
        assert LastValueForecaster().forecast() is None

    def test_tracks_last(self):
        f = LastValueForecaster()
        f.update(1.0)
        f.update(3.0)
        assert f.forecast() == 3.0

    def test_reset(self):
        f = LastValueForecaster()
        f.update(1.0)
        f.reset()
        assert f.forecast() is None


class TestSlidingMean:
    def test_mean_of_window(self):
        f = SlidingMeanForecaster(window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            f.update(v)
        assert f.forecast() == pytest.approx(3.0)  # last three

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            SlidingMeanForecaster(window=0)


class TestSlidingMedian:
    def test_median_odd(self):
        f = SlidingMedianForecaster(window=5)
        for v in (1.0, 100.0, 2.0):
            f.update(v)
        assert f.forecast() == 2.0

    def test_median_even(self):
        f = SlidingMedianForecaster(window=4)
        for v in (1.0, 2.0, 3.0, 4.0):
            f.update(v)
        assert f.forecast() == 2.5

    def test_robust_to_burst(self):
        """One outlier does not drag the median (it would drag the mean)."""
        med = SlidingMedianForecaster(window=5)
        mean = SlidingMeanForecaster(window=5)
        for v in (1.0, 1.0, 1.0, 1.0, 50.0):
            med.update(v)
            mean.update(v)
        assert med.forecast() == 1.0
        assert mean.forecast() > 10.0


class TestExponentialSmoothing:
    def test_smoothing(self):
        f = ExponentialSmoothingForecaster(gamma=0.5)
        f.update(0.0)
        f.update(1.0)
        assert f.forecast() == pytest.approx(0.5)

    def test_gamma_one_is_last_value(self):
        f = ExponentialSmoothingForecaster(gamma=1.0)
        f.update(1.0)
        f.update(7.0)
        assert f.forecast() == 7.0

    def test_bad_gamma_raises(self):
        with pytest.raises(ValueError):
            ExponentialSmoothingForecaster(gamma=0.0)
        with pytest.raises(ValueError):
            ExponentialSmoothingForecaster(gamma=1.5)


class TestAdaptive:
    def test_none_before_data(self):
        assert AdaptiveForecaster().forecast() is None

    def test_empty_members_raise(self):
        with pytest.raises(ValueError):
            AdaptiveForecaster(members=[])

    def test_constant_series_predicted_exactly(self):
        f = AdaptiveForecaster()
        for _ in range(10):
            f.update(0.4)
        assert f.forecast() == pytest.approx(0.4)

    def test_picks_best_member_on_steady_series(self):
        """On a flat series with rare spikes the median member wins."""
        f = AdaptiveForecaster()
        rng = np.random.default_rng(0)
        for i in range(200):
            v = 0.7 if rng.random() < 0.1 else 0.1
            f.update(v)
        # forecast should be near the baseline, not dragged to the spike
        assert f.forecast() < 0.3

    def test_member_errors_tracked(self):
        f = AdaptiveForecaster()
        for v in (1.0, 2.0, 3.0):
            f.update(v)
        errors = f.member_errors()
        assert len(errors) == 4
        assert all(e >= 0 for e in errors)

    def test_beats_last_value_on_noisy_series(self):
        """Ensemble MAE <= the worst member's MAE by construction; check it
        also tracks a noisy AR series sensibly."""
        rng = np.random.default_rng(42)
        series = 0.4 + 0.05 * rng.standard_normal(300)
        f = AdaptiveForecaster()
        err = 0.0
        n = 0
        for v in series:
            pred = f.forecast()
            if pred is not None:
                err += abs(pred - v)
                n += 1
            f.update(v)
        assert err / n < 0.1

    def test_reset_clears_state(self):
        f = AdaptiveForecaster()
        for v in (1.0, 2.0):
            f.update(v)
        f.reset()
        assert f.forecast() is None
        assert all(e == float("inf") for e in f.member_errors())
