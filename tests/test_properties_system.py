"""Cross-module property tests: regrid coverage, gain bounds, comm
monotonicity, run determinism under random configurations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.applications import AMR64, ShockPool3D
from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.amr.regrid import regrid_level
from repro.core.gain import WorkloadHistory, estimate_gain
from repro.distsys import ConstantTraffic, wan_system
from repro.distsys.comm import Message, MessageKind, comm_phase_time
from repro.runtime import root_blocks


class TestRegridCoverageProperty:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        time=st.floats(min_value=0.0, max_value=5.0),
        nclumps=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=15, deadline=None)
    def test_every_flagged_cell_covered_by_children(self, seed, time, nclumps):
        """Regridding must refine everything the application flagged
        (buffering only ever adds cells)."""
        app = AMR64(domain_cells=16, max_levels=2, nclumps=nclumps, seed=seed)
        h = GridHierarchy(app.domain, 2, 2)
        h.create_root_grids(root_blocks(app.domain, (4, 1, 1)))
        regrid_level(h, app, 0, time)
        h.validate()
        flags = app.flags(0, app.domain, time)
        children = h.level_grids(1)
        for coord in np.argwhere(flags):
            fine = Box(tuple(int(c) * 2 for c in coord),
                       tuple(int(c) * 2 + 2 for c in coord))
            covered = sum(
                g.box.intersection(fine).ncells for g in children
            )
            assert covered == fine.ncells, f"cell {coord} not fully refined"

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_regrid_idempotent_at_fixed_time(self, seed):
        app = AMR64(domain_cells=16, max_levels=2, nclumps=6, seed=seed)
        h = GridHierarchy(app.domain, 2, 2)
        h.create_root_grids(root_blocks(app.domain, (4, 1, 1)))
        first = {g.box for g in regrid_level(h, app, 0, 1.0)}
        second = {g.box for g in regrid_level(h, app, 0, 1.0)}
        assert first == second


class TestGainProperties:
    @given(
        loads=st.lists(st.floats(min_value=0.0, max_value=1e4),
                       min_size=4, max_size=4),
        walltime=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_gain_nonnegative_and_bounded(self, loads, walltime):
        """0 <= Gain <= T / N_groups for any recorded loads."""
        system = wan_system(2, ConstantTraffic(0.0))
        hist = WorkloadHistory()
        hist.record_solve(0, {i: loads[i] for i in range(4)})
        hist.end_coarse_step(walltime)
        gain = estimate_gain(hist, system)
        assert gain >= 0.0
        assert gain <= walltime / 2 + 1e-9

    @given(scale=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_gain_scale_invariant_in_loads(self, scale):
        """Scaling every load leaves Eq. 4 unchanged (it is a ratio)."""
        system = wan_system(2, ConstantTraffic(0.0))

        def gain_for(factor):
            hist = WorkloadHistory()
            hist.record_solve(0, {0: 30.0 * factor, 1: 0.0,
                                  2: 10.0 * factor, 3: 0.0})
            hist.end_coarse_step(7.0)
            return estimate_gain(hist, system)

        assert gain_for(1.0) == pytest.approx(gain_for(scale))


class TestCommMonotonicity:
    @given(
        nbytes=st.floats(min_value=0.0, max_value=1e7),
        extra=st.floats(min_value=0.0, max_value=1e7),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_bytes_never_faster(self, nbytes, extra):
        system = wan_system(1, ConstantTraffic(0.2))
        small = comm_phase_time(
            system, [Message(0, 1, nbytes, MessageKind.SIBLING)], 0.0
        )
        large = comm_phase_time(
            system, [Message(0, 1, nbytes + extra, MessageKind.SIBLING)], 0.0
        )
        assert large.elapsed >= small.elapsed - 1e-12

    @given(n=st.integers(min_value=1, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_more_pairs_never_faster(self, n):
        system = wan_system(8, ConstantTraffic(0.2))
        def phase(k):
            msgs = [Message(i % 8, 8 + (i % 8), 100.0, MessageKind.SIBLING)
                    for i in range(k)]
            return comm_phase_time(system, msgs, 0.0).elapsed
        assert phase(n) <= phase(n + 1) + 1e-12


class TestShockAppProperties:
    @given(
        t=st.floats(min_value=0.0, max_value=8.0),
        tilt=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_flag_fraction_bounded(self, t, tilt):
        app = ShockPool3D(domain_cells=8, max_levels=2, ndim=2, tilt=tilt)
        frac = app.flag_fraction(0, t)
        assert 0.0 <= frac <= 1.0

    @given(t=st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=20, deadline=None)
    def test_flags_deterministic_in_time(self, t):
        app = ShockPool3D(domain_cells=8, max_levels=2, ndim=2)
        a = app.flags(0, app.domain, t)
        b = app.flags(0, app.domain, t)
        assert (a == b).all()
