"""Unit tests for processors, groups and distributed systems."""

from __future__ import annotations

import pytest

from repro.distsys.group import Group
from repro.distsys.network import gigabit_lan, mren_wan
from repro.distsys.processor import Processor
from repro.distsys.system import (
    DistributedSystem,
    build_system,
    lan_system,
    parallel_system,
    wan_system,
)


class TestProcessor:
    def test_speed(self):
        p = Processor(0, 0, weight=2.0, base_speed=1e6)
        assert p.speed == 2e6

    def test_execution_time(self):
        p = Processor(0, 0, weight=1.0, base_speed=1e6)
        assert p.execution_time(5e5) == pytest.approx(0.5)

    def test_zero_work_is_free(self):
        assert Processor(0, 0).execution_time(0.0) == 0.0

    def test_negative_work_raises(self):
        with pytest.raises(ValueError):
            Processor(0, 0).execution_time(-1.0)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            Processor(-1, 0)
        with pytest.raises(ValueError):
            Processor(0, 0, weight=0)
        with pytest.raises(ValueError):
            Processor(0, 0, base_speed=0)


class TestGroup:
    def test_capacity(self):
        procs = [Processor(i, 0, weight=2.0) for i in range(3)]
        g = Group(0, "g", procs)
        assert g.capacity == 6.0
        assert g.nprocs == 3
        assert g.processor_weight == 2.0

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            Group(0, "g", [])

    def test_wrong_group_id_raises(self):
        with pytest.raises(ValueError):
            Group(0, "g", [Processor(0, 1)])

    def test_heterogeneous_group_raises(self):
        """A group is homogeneous by the paper's definition."""
        procs = [Processor(0, 0, weight=1.0), Processor(1, 0, weight=2.0)]
        with pytest.raises(ValueError):
            Group(0, "g", procs)


class TestDistributedSystem:
    def test_wan_shape(self):
        s = wan_system(2)
        assert s.ngroups == 2
        assert s.nprocs == 4
        assert [p.pid for p in s.processors] == [0, 1, 2, 3]

    def test_group_of_and_is_remote(self):
        s = wan_system(2)
        assert s.group_of(0).group_id == 0
        assert s.group_of(3).group_id == 1
        assert s.is_remote(0, 3)
        assert not s.is_remote(0, 1)

    def test_link_between(self):
        s = wan_system(2)
        assert s.link_between(0, 0) is None
        assert s.link_between(0, 1) is s.groups[0].intra_link
        assert s.link_between(0, 2) is s.inter_link(0, 1)

    def test_inter_link_same_group_raises(self):
        s = wan_system(2)
        with pytest.raises(ValueError):
            s.inter_link(0, 0)

    def test_capacity_fraction(self):
        s = build_system([2, 6], inter_link=mren_wan())
        assert s.capacity_fraction(0) == pytest.approx(0.25)
        assert s.capacity_fraction(1) == pytest.approx(0.75)

    def test_heterogeneous_groups(self):
        s = build_system([2, 2], inter_link=gigabit_lan(), group_weights=[1.0, 3.0])
        assert s.total_capacity == pytest.approx(8.0)
        assert s.capacity_fraction(1) == pytest.approx(0.75)

    def test_parallel_system_single_group(self):
        s = parallel_system(8)
        assert s.ngroups == 1
        assert s.nprocs == 8
        assert not s.is_remote(0, 7)

    def test_missing_inter_link_raises(self):
        g0 = Group(0, "a", [Processor(0, 0)])
        g1 = Group(1, "b", [Processor(1, 1)])
        with pytest.raises(ValueError):
            DistributedSystem([g0, g1], {})

    def test_nondense_pids_raise(self):
        g0 = Group(0, "a", [Processor(0, 0)])
        g1 = Group(1, "b", [Processor(5, 1)])
        with pytest.raises(ValueError):
            DistributedSystem([g0, g1], {frozenset((0, 1)): mren_wan()})

    def test_group_id_mismatch_raises(self):
        g0 = Group(1, "a", [Processor(0, 1)])
        with pytest.raises(ValueError):
            DistributedSystem([g0])

    def test_multigroup_needs_link(self):
        with pytest.raises(ValueError):
            build_system([1, 1])

    def test_describe_mentions_groups(self):
        text = wan_system(2).describe()
        assert "ANL" in text and "NCSA" in text

    def test_lan_system_names(self):
        s = lan_system(1)
        assert {g.name for g in s.groups} == {"ANL-1", "ANL-2"}
