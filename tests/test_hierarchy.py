"""Unit and property tests for the grid hierarchy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.box import Box
from repro.amr.hierarchy import GridHierarchy
from repro.runtime import root_blocks


def make_hierarchy(n=16, levels=3, blocks=(4, 1, 1)):
    domain = Box.cube(0, n, 3)
    h = GridHierarchy(domain, refinement_ratio=2, max_levels=levels)
    h.create_root_grids(root_blocks(domain, blocks))
    return h


class TestConstruction:
    def test_bad_ratio_raises(self):
        with pytest.raises(ValueError):
            GridHierarchy(Box.cube(0, 8, 2), refinement_ratio=1)

    def test_bad_levels_raises(self):
        with pytest.raises(ValueError):
            GridHierarchy(Box.cube(0, 8, 2), max_levels=0)

    def test_empty_domain_raises(self):
        with pytest.raises(ValueError):
            GridHierarchy(Box((0, 0), (0, 4)))

    def test_root_grids_must_tile_exactly(self):
        h = GridHierarchy(Box.cube(0, 8, 2), max_levels=2)
        with pytest.raises(ValueError):
            h.create_root_grids([Box((0, 0), (4, 8))])  # covers half

    def test_root_grids_must_not_overlap(self):
        h = GridHierarchy(Box.cube(0, 8, 2), max_levels=2)
        with pytest.raises(ValueError):
            h.create_root_grids([Box((0, 0), (6, 8)), Box((4, 0), (8, 8))])

    def test_root_grids_must_be_inside(self):
        h = GridHierarchy(Box.cube(0, 8, 2), max_levels=2)
        with pytest.raises(ValueError):
            h.create_root_grids([Box((0, 0), (8, 10))])

    def test_double_root_creation_raises(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            h.create_root_grids([h.domain])


class TestAddRemove:
    def test_add_child(self):
        h = make_hierarchy()
        root = h.level_grids(0)[0]
        child = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), root.gid)
        assert child.parent_gid == root.gid
        assert root.children == (child.gid,)
        h.validate()

    def test_add_level0_via_add_grid_raises(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            h.add_grid(0, Box.cube(0, 2, 3))

    def test_child_outside_parent_raises(self):
        h = make_hierarchy()
        root = h.level_grids(0)[0]  # box [0,4) x [0,16)^2
        with pytest.raises(ValueError):
            h.add_grid(1, Box((30, 0, 0), (32, 4, 4)), root.gid)

    def test_overlapping_siblings_raise(self):
        h = make_hierarchy()
        root = h.level_grids(0)[0]
        h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), root.gid)
        with pytest.raises(ValueError):
            h.add_grid(1, Box((2, 2, 2), (6, 6, 6)), root.gid)

    def test_wrong_parent_level_raises(self):
        h = make_hierarchy(levels=3)
        root = h.level_grids(0)[0]
        with pytest.raises(ValueError):
            h.add_grid(2, Box((0, 0, 0), (4, 4, 4)), root.gid)

    def test_remove_subtree(self):
        h = make_hierarchy()
        root = h.level_grids(0)[0]
        c1 = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), root.gid)
        c2 = h.add_grid(2, Box((0, 0, 0), (4, 4, 4)), c1.gid)
        h.remove_grid(c1.gid)
        assert not h.has_grid(c1.gid)
        assert not h.has_grid(c2.gid)
        assert root.children == ()
        h.validate()

    def test_clear_level_removes_finer(self):
        h = make_hierarchy()
        root = h.level_grids(0)[0]
        c1 = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), root.gid)
        h.add_grid(2, Box((0, 0, 0), (4, 4, 4)), c1.gid)
        h.clear_level(1)
        assert h.level_grids(1) == []
        assert h.level_grids(2) == []
        assert h.level_grids(0)  # roots survive

    def test_clear_level0_raises(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            h.clear_level(0)

    def test_version_bumps_on_change(self):
        h = make_hierarchy()
        v0 = h.version
        root = h.level_grids(0)[0]
        c = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), root.gid)
        assert h.version > v0
        v1 = h.version
        h.remove_grid(c.gid)
        assert h.version > v1


class TestQueries:
    def test_nlevels(self):
        h = make_hierarchy()
        assert h.nlevels == 1
        root = h.level_grids(0)[0]
        h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), root.gid)
        assert h.nlevels == 2

    def test_level_domain(self):
        h = make_hierarchy(n=16)
        assert h.level_domain(0) == Box.cube(0, 16, 3)
        assert h.level_domain(2) == Box.cube(0, 64, 3)

    def test_level_workload(self):
        h = make_hierarchy(n=16, blocks=(4, 1, 1))
        assert h.level_workload(0) == 16**3

    def test_total_cells(self):
        h = make_hierarchy(n=16)
        assert h.total_cells() == 16**3

    def test_subtree_preorder(self):
        h = make_hierarchy()
        root = h.level_grids(0)[0]
        c1 = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), root.gid)
        c2 = h.add_grid(2, Box((0, 0, 0), (4, 4, 4)), c1.gid)
        gids = [g.gid for g in h.subtree(root.gid)]
        assert gids == [root.gid, c1.gid, c2.gid]

    def test_descendants_of_deduplicates(self):
        h = make_hierarchy()
        roots = h.level_grids(0)
        c1 = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), roots[0].gid)
        descendants = h.descendants_of([roots[0].gid, roots[0].gid])
        assert [g.gid for g in descendants] == [c1.gid]


class TestSiblingPairs:
    def test_adjacent_slabs(self):
        h = make_hierarchy(n=16, blocks=(4, 1, 1))
        pairs = h.sibling_pairs(0)
        # 4 slabs in a row -> 3 adjacent pairs
        assert len(pairs) == 3
        for a, b, area in pairs:
            assert a < b
            assert area == 2 * 16 * 16  # two-way full face exchange

    def test_blocks_grid_pair_count(self):
        h = make_hierarchy(n=16, blocks=(2, 2, 1))
        pairs = h.sibling_pairs(0)
        # 2x2 arrangement: 4 face pairs + 2 diagonal pairs
        assert len(pairs) == 6

    def test_no_pairs_single_grid(self):
        h = make_hierarchy(n=16, blocks=(1, 1, 1))
        assert h.sibling_pairs(0) == []

    def test_pairs_sorted_and_deterministic(self):
        h = make_hierarchy(n=16, blocks=(4, 2, 1))
        assert h.sibling_pairs(0) == sorted(h.sibling_pairs(0))


class TestValidateCatchesCorruption:
    def test_validate_ok(self):
        h = make_hierarchy()
        h.validate()

    def test_validate_catches_bad_parent_link(self):
        h = make_hierarchy()
        root = h.level_grids(0)[0]
        c = h.add_grid(1, Box((0, 0, 0), (4, 4, 4)), root.gid)
        root._children.remove(c.gid)  # corrupt on purpose
        with pytest.raises(AssertionError):
            h.validate()


@given(
    blocks=st.sampled_from([(1, 1, 1), (2, 1, 1), (2, 2, 1), (4, 2, 2)]),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_property_random_subtrees_keep_invariants(blocks, seed):
    """Randomly grown hierarchies always satisfy validate()."""
    import numpy as np

    rng = np.random.default_rng(seed)
    h = make_hierarchy(n=16, levels=3, blocks=blocks)
    for _ in range(10):
        # pick a random grid, try to add a child in its refined box
        grids = [g for g in h.all_grids() if g.level < h.max_levels - 1]
        g = grids[rng.integers(len(grids))]
        refined = g.box.refine(2)
        lo = [int(rng.integers(refined.lo[d], refined.hi[d])) for d in range(3)]
        hi = [min(refined.hi[d], lo[d] + int(rng.integers(1, 5))) for d in range(3)]
        box = Box(tuple(lo), tuple(hi))
        if box.is_empty:
            continue
        try:
            h.add_grid(g.level + 1, box, g.gid)
        except ValueError:
            pass  # overlap with an existing sibling: legal rejection
    h.validate()
