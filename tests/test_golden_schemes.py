"""Refactored built-ins reproduce pre-refactor ``RunResult``s bit-for-bit.

``tests/data/golden_runresults.json`` was captured by running every
built-in scheme (plus the sequential reference) *before* the schemes were
rebuilt as policy compositions.  Each test re-runs the same configuration
through the composed schemes and compares the full serialized result --
every float, event, and per-step timing -- with exact equality.  Any
behavioural drift in the refactor fails here, not in a statistics test.
"""

import json
from pathlib import Path

import pytest

from repro.config import FaultParams
from repro.harness import ExperimentConfig, run_experiment, run_sequential
from repro.harness.persist import run_result_to_dict

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_runresults.json").read_text())

_BASE = dict(procs_per_group=2, steps=3, domain_cells=16, max_levels=3)
CONFIGS = {
    "wan": ExperimentConfig(**_BASE),
    "lan": ExperimentConfig(app_name="amr64", network="lan", **_BASE),
    "faulted": ExperimentConfig(fault=FaultParams(scenario="slowdown"),
                                traffic_kind="bursty", **_BASE),
}


def _golden_keys():
    return sorted(GOLDEN["results"])


@pytest.mark.parametrize("key", _golden_keys())
def test_scheme_matches_golden(key):
    config_name, scheme = key.split("/")
    cfg = CONFIGS[config_name]
    if scheme == "sequential":
        result = run_sequential(cfg)
    else:
        result = run_experiment(cfg, scheme)
    assert run_result_to_dict(result) == GOLDEN["results"][key]


def test_golden_covers_every_builtin_scheme():
    from repro.core.registry import available_schemes

    covered = {key.split("/")[1] for key in GOLDEN["results"]}
    assert set(available_schemes()) <= covered
