"""Unit and property tests for the integer box algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amr.box import Box

# --------------------------------------------------------------------- #
# construction
# --------------------------------------------------------------------- #


class TestConstruction:
    def test_basic(self):
        b = Box((0, 0), (4, 8))
        assert b.ndim == 2
        assert b.shape == (4, 8)
        assert b.ncells == 32
        assert not b.is_empty

    def test_empty_box_is_legal(self):
        b = Box((3, 3), (3, 5))
        assert b.is_empty
        assert b.ncells == 0

    def test_inverted_raises(self):
        with pytest.raises(ValueError):
            Box((2, 0), (1, 4))

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1, 1, 1))

    def test_zero_dims_raises(self):
        with pytest.raises(ValueError):
            Box((), ())

    def test_coordinates_coerced_to_int(self):
        b = Box((np.int64(1), np.int64(2)), (np.int64(3), np.int64(4)))
        assert all(isinstance(x, int) for x in b.lo + b.hi)

    def test_cube_constructor(self):
        b = Box.cube(0, 8, 3)
        assert b.shape == (8, 8, 8)

    def test_hashable_and_ordered(self):
        a, b = Box((0,), (2,)), Box((1,), (3,))
        assert a < b
        assert len({a, b, Box((0,), (2,))}) == 2

    def test_center(self):
        assert Box((0, 0), (4, 2)).center() == (2.0, 1.0)


# --------------------------------------------------------------------- #
# set operations
# --------------------------------------------------------------------- #


class TestSetOps:
    def test_intersection_overlapping(self):
        a = Box((0, 0), (4, 4))
        b = Box((2, 2), (6, 6))
        assert a.intersection(b) == Box((2, 2), (4, 4))

    def test_intersection_disjoint_is_empty(self):
        a = Box((0, 0), (2, 2))
        b = Box((4, 4), (6, 6))
        assert a.intersection(b).is_empty

    def test_intersects(self):
        a = Box((0, 0), (4, 4))
        assert a.intersects(Box((3, 3), (5, 5)))
        assert not a.intersects(Box((4, 0), (6, 4)))  # touching faces

    def test_contains(self):
        outer = Box((0, 0), (8, 8))
        assert outer.contains(Box((2, 2), (4, 4)))
        assert not outer.contains(Box((6, 6), (10, 10)))
        assert outer.contains(Box((3, 3), (3, 3)))  # empty contained anywhere

    def test_contains_point(self):
        b = Box((0, 0), (4, 4))
        assert b.contains_point((0, 0))
        assert b.contains_point((3, 3))
        assert not b.contains_point((4, 0))

    def test_bounding_union(self):
        a = Box((0, 0), (2, 2))
        b = Box((4, 4), (6, 6))
        assert a.bounding_union(b) == Box((0, 0), (6, 6))

    def test_bounding_union_with_empty(self):
        a = Box((0, 0), (2, 2))
        e = Box((5, 5), (5, 5))
        assert a.bounding_union(e) == a
        assert e.bounding_union(a) == a

    def test_difference_no_overlap(self):
        a = Box((0,), (4,))
        assert a.difference(Box((10,), (12,))) == (a,)

    def test_difference_full_cover(self):
        a = Box((1,), (3,))
        assert a.difference(Box((0,), (4,))) == ()

    def test_difference_partition_is_exact(self):
        a = Box((0, 0, 0), (6, 6, 6))
        b = Box((2, 2, 2), (4, 4, 4))
        pieces = a.difference(b)
        # pieces plus the intersection partition a
        assert sum(p.ncells for p in pieces) + a.intersection(b).ncells == a.ncells
        for i, p in enumerate(pieces):
            assert not p.intersects(b)
            for q in pieces[i + 1 :]:
                assert not p.intersects(q)


# --------------------------------------------------------------------- #
# refine / coarsen / grow / split
# --------------------------------------------------------------------- #


class TestRefineCoarsen:
    def test_refine(self):
        assert Box((1, 2), (3, 4)).refine(2) == Box((2, 4), (6, 8))

    def test_coarsen_rounds_outward(self):
        assert Box((1,), (5,)).coarsen(2) == Box((0,), (3,))

    def test_refine_coarsen_roundtrip(self):
        b = Box((3, 5), (7, 9))
        assert b.refine(4).coarsen(4) == b

    def test_bad_ratio_raises(self):
        with pytest.raises(ValueError):
            Box((0,), (2,)).refine(0)
        with pytest.raises(ValueError):
            Box((0,), (2,)).coarsen(-2)

    def test_grow(self):
        assert Box((2, 2), (4, 4)).grow(1) == Box((1, 1), (5, 5))

    def test_grow_negative_shrinks(self):
        assert Box((0, 0), (4, 4)).grow(-1) == Box((1, 1), (3, 3))

    def test_grow_past_empty_raises(self):
        with pytest.raises(ValueError):
            Box((0, 0), (2, 2)).grow(-2)

    def test_split(self):
        lo, hi = Box((0, 0), (4, 4)).split(0, 1)
        assert lo == Box((0, 0), (1, 4))
        assert hi == Box((1, 0), (4, 4))

    def test_split_invalid_plane_raises(self):
        with pytest.raises(ValueError):
            Box((0,), (4,)).split(0, 0)
        with pytest.raises(ValueError):
            Box((0,), (4,)).split(0, 4)

    def test_split_bad_axis_raises(self):
        with pytest.raises(ValueError):
            Box((0,), (4,)).split(1, 2)

    def test_longest_axis(self):
        assert Box((0, 0, 0), (2, 8, 4)).longest_axis() == 1


# --------------------------------------------------------------------- #
# faces / adjacency
# --------------------------------------------------------------------- #


class TestFaces:
    def test_surface_cells_full_for_thin_box(self):
        b = Box((0, 0), (1, 5))
        assert b.surface_cells() == 5

    def test_surface_cells_3d(self):
        b = Box.cube(0, 4, 3)
        assert b.surface_cells() == 64 - 8  # 4^3 minus 2^3 interior

    def test_shared_face_area_adjacent(self):
        a = Box((0, 0), (4, 4))
        b = Box((4, 0), (8, 4))
        # 4 cells received by each side across the shared face
        assert a.shared_face_area(b) == 8
        assert b.shared_face_area(a) == 8  # symmetric

    def test_shared_face_area_corner_touch(self):
        a = Box((0, 0), (2, 2))
        b = Box((2, 2), (4, 4))
        assert a.shared_face_area(b) == 2  # one diagonal ghost cell each way

    def test_shared_face_area_far_apart(self):
        a = Box((0, 0), (2, 2))
        b = Box((5, 5), (7, 7))
        assert a.shared_face_area(b) == 0

    def test_is_adjacent(self):
        a = Box((0, 0), (2, 2))
        assert a.is_adjacent(Box((2, 0), (4, 2)))
        assert not a.is_adjacent(Box((1, 1), (3, 3)))  # overlapping not adjacent
        assert not a.is_adjacent(Box((6, 6), (8, 8)))

    def test_wider_ghost_reaches_farther(self):
        a = Box((0, 0), (2, 2))
        b = Box((3, 0), (5, 2))
        assert a.shared_face_area(b, ghost=1) == 0
        assert a.shared_face_area(b, ghost=2) == 4


# --------------------------------------------------------------------- #
# iteration
# --------------------------------------------------------------------- #


class TestIteration:
    def test_slices_roundtrip(self):
        arr = np.zeros((8, 8))
        b = Box((2, 3), (5, 6))
        arr[b.slices()] = 1
        assert arr.sum() == b.ncells

    def test_slices_with_origin(self):
        arr = np.zeros((4, 4))
        b = Box((10, 10), (12, 12))
        arr[b.slices(origin=(9, 9))] = 1
        assert arr[1:3, 1:3].sum() == 4

    def test_cell_coordinates(self):
        b = Box((1, 1), (3, 2))
        coords = {tuple(c) for c in b.cell_coordinates()}
        assert coords == {(1, 1), (2, 1)}

    def test_iter_matches_cell_coordinates(self):
        b = Box((0, 0), (2, 2))
        assert set(b) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_empty_cell_coordinates(self):
        b = Box((1, 1), (1, 3))
        assert b.cell_coordinates().shape == (0, 2)


# --------------------------------------------------------------------- #
# property-based
# --------------------------------------------------------------------- #

coords = st.integers(min_value=-32, max_value=32)
extents = st.integers(min_value=0, max_value=16)


@st.composite
def boxes(draw, ndim=3):
    lo = [draw(coords) for _ in range(ndim)]
    hi = [l + draw(extents) for l in lo]
    return Box(tuple(lo), tuple(hi))


class TestProperties:
    @given(boxes(), boxes())
    def test_intersection_commutes(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(boxes(), boxes())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if not inter.is_empty:
            assert a.contains(inter) and b.contains(inter)

    @given(boxes())
    def test_intersection_self_identity(self, a):
        if not a.is_empty:
            assert a.intersection(a) == a

    @given(boxes(), boxes())
    def test_intersects_iff_nonempty_intersection(self, a, b):
        assert a.intersects(b) == (not a.intersection(b).is_empty)

    @given(boxes(), boxes())
    def test_bounding_union_contains_both(self, a, b):
        u = a.bounding_union(b)
        assert u.contains(a) and u.contains(b)

    @given(boxes(), st.integers(min_value=1, max_value=4))
    def test_coarsen_covers(self, a, r):
        """No cell may be lost when coarsening then refining back."""
        assert a.coarsen(r).refine(r).contains(a)

    @given(boxes(), st.integers(min_value=1, max_value=4))
    def test_refine_scales_volume(self, a, r):
        assert a.refine(r).ncells == a.ncells * r**a.ndim

    @given(boxes(), boxes())
    def test_difference_partitions(self, a, b):
        pieces = a.difference(b)
        inter = a.intersection(b)
        assert sum(p.ncells for p in pieces) + inter.ncells == a.ncells
        for p in pieces:
            assert a.contains(p)
            assert not p.intersects(b)

    @given(boxes(), boxes())
    def test_shared_face_area_symmetric(self, a, b):
        assert a.shared_face_area(b) == b.shared_face_area(a)

    @given(boxes())
    def test_surface_at_most_volume(self, a):
        assert 0 <= a.surface_cells() <= a.ncells
