"""The scheme registry: specs, resolution, cache keys, and custom schemes.

Covers the registry contract promised by ``docs/SCHEMES.md``: a
``SchemeSpec`` round-trips through its dict form, unknown names fail with
a message listing what *is* registered, legacy display labels resolve
behind a :class:`DeprecationWarning`, and a user-registered hybrid scheme
flows through ``run_paired`` / ``run_sweep`` / the result cache with zero
harness changes -- including a cache key distinct from every built-in.
"""

import warnings
from dataclasses import replace

import pytest

from repro.cli import main
from repro.core import (
    ComposedScheme,
    DiffusionDLB,
    DistributedDLB,
    ParallelDLB,
    StaticDLB,
)
from repro.core.registry import (
    SEQUENTIAL,
    SchemeSpec,
    available_schemes,
    get_scheme_spec,
    make_scheme,
    register_scheme,
    scheme_cache_payload,
    unregister_scheme,
)
from repro.exec import ResultCache, SerialExecutor, task_key
from repro.harness import ExperimentConfig, run_experiment, run_paired, run_sweep

SMALL = ExperimentConfig(procs_per_group=1, steps=2)

BUILTINS = ("diffusion", "diffusion:dimex", "diffusion:sos", "distributed",
            "parallel", "sfc:hilbert", "sfc:morton", "static")

HYBRID = SchemeSpec(
    name="hybrid-diffusion",
    display="hybrid (gain/cost global + diffusion local)",
    weights="measured",
    decision="gain-cost",
    global_partition="proportional",
    local="diffusion",
    options={"sweeps": 2},
)


@pytest.fixture
def scratch_registry():
    """Register specs through this and they are removed again afterwards."""
    registered = []

    def _register(spec, factory=None, **kwargs):
        register_scheme(spec, factory, **kwargs)
        registered.append(spec.name)
        return spec

    yield _register
    for name in registered:
        unregister_scheme(name)


class TestSchemeSpec:
    def test_round_trip(self):
        data = HYBRID.to_dict()
        assert SchemeSpec.from_dict(data) == HYBRID

    def test_round_trip_is_plain_data(self):
        import json

        assert SchemeSpec.from_dict(
            json.loads(json.dumps(HYBRID.to_dict()))) == HYBRID

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            SchemeSpec.from_dict({"name": "x", "colour": "red"})

    def test_from_dict_requires_name(self):
        with pytest.raises(ValueError):
            SchemeSpec.from_dict({"weights": "nominal"})

    def test_unknown_component_rejected_per_axis(self):
        for axis in ("weights", "decision", "global_partition", "local"):
            with pytest.raises(ValueError, match=axis):
                SchemeSpec(name="x", **{axis: "bogus"})

    def test_label_falls_back_to_name(self):
        assert SchemeSpec(name="x").label == "x"
        assert HYBRID.label == HYBRID.display

    def test_options_are_copied(self):
        opts = {"sweeps": 3}
        spec = SchemeSpec(name="x", local="diffusion", options=opts)
        opts["sweeps"] = 99
        assert spec.options["sweeps"] == 3


class TestResolution:
    def test_builtins_registered(self):
        assert available_schemes() == BUILTINS

    def test_make_scheme_builds_builtin_classes(self):
        for name, cls in [("parallel", ParallelDLB),
                          ("distributed", DistributedDLB),
                          ("static", StaticDLB),
                          ("diffusion", DiffusionDLB)]:
            scheme = make_scheme(name)
            assert isinstance(scheme, cls)
            assert isinstance(scheme, ComposedScheme)
            assert scheme.spec == get_scheme_spec(name)

    def test_unknown_name_lists_registered_schemes(self):
        with pytest.raises(ValueError) as err:
            make_scheme("nope")
        message = str(err.value)
        assert "nope" in message
        for name in BUILTINS:
            assert name in message

    def test_legacy_display_label_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="parallel DLB"):
            scheme = make_scheme("parallel DLB")
        assert isinstance(scheme, ParallelDLB)

    def test_canonical_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for name in BUILTINS:
                make_scheme(name)

    def test_duplicate_registration_rejected(self, scratch_registry):
        spec = scratch_registry(replace(HYBRID, name="dup-check"))
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(spec)
        register_scheme(replace(spec, local="greedy", options={}),
                        replace=True)
        assert get_scheme_spec("dup-check").local == "greedy"

    def test_sequential_name_reserved(self):
        with pytest.raises(ValueError):
            register_scheme(SchemeSpec(name=SEQUENTIAL))

    def test_make_scheme_accepts_unregistered_spec(self):
        spec = replace(HYBRID, name="ad-hoc")
        scheme = make_scheme(spec)
        assert isinstance(scheme, ComposedScheme)
        assert scheme.name == spec.label
        assert "ad-hoc" not in available_schemes()

    def test_unknown_option_rejected_at_build_time(self):
        with pytest.raises(ValueError, match="typo"):
            make_scheme(SchemeSpec(name="x", options={"typo": 1}))


class TestCacheKeys:
    def test_every_registered_scheme_keys_differently(self):
        keys = {task_key(SMALL, name) for name in BUILTINS}
        keys.add(task_key(SMALL, SEQUENTIAL))
        assert len(keys) == len(BUILTINS) + 1

    def test_custom_scheme_key_distinct_from_builtins(self, scratch_registry):
        scratch_registry(HYBRID)
        key = task_key(SMALL, HYBRID.name)
        for other in (*BUILTINS, SEQUENTIAL):
            assert key != task_key(SMALL, other)

    def test_key_tracks_composition_not_name(self, scratch_registry):
        scratch_registry(replace(HYBRID, name="tmp"))
        first = task_key(SMALL, "tmp")
        unregister_scheme("tmp")
        scratch_registry(
            replace(HYBRID, name="tmp", local="sticky", options={}))
        assert task_key(SMALL, "tmp") != first

    def test_sequential_payload_is_pseudo_marker(self):
        assert scheme_cache_payload(SEQUENTIAL) == {"pseudo": SEQUENTIAL}

    def test_unknown_scheme_key_raises(self):
        with pytest.raises(ValueError, match="registered schemes"):
            task_key(SMALL, "nope")


class TestHybridEndToEnd:
    """A user-defined composition runs through the harness unchanged."""

    def test_run_experiment(self, scratch_registry):
        scratch_registry(HYBRID)
        result = run_experiment(SMALL, HYBRID.name)
        assert result.scheme == HYBRID.display
        assert result.total_time > 0

    def test_run_paired_with_diffusion_treatment(self):
        pair = run_paired(SMALL, schemes=("parallel", "diffusion"))
        assert pair.scheme_names == ("parallel", "diffusion")
        assert pair.parallel.scheme == "parallel DLB"
        assert pair.distributed.scheme == "diffusion DLB"

    def test_run_sweep_with_cache(self, scratch_registry, tmp_path):
        scratch_registry(HYBRID)
        cache = ResultCache(tmp_path)
        ex = SerialExecutor(cache=cache)
        cold = run_sweep(SMALL, procs_per_group=(1,),
                         schemes=("static", HYBRID.name), executor=ex)
        assert cache.hits == 0 and cache.misses == 2
        warm = run_sweep(SMALL, procs_per_group=(1,),
                         schemes=("static", HYBRID.name), executor=ex)
        assert cache.hits == 2
        assert (warm.pairs[0].distributed.total_time
                == cold.pairs[0].distributed.total_time)
        assert cold.pairs[0].distributed.scheme == HYBRID.display

    def test_scheme_pair_must_have_two_names(self):
        with pytest.raises(ValueError, match="two"):
            run_paired(SMALL, schemes=("parallel",))

    def test_cli_run_diffusion(self, capsys, tmp_path):
        rc = main(["run", "--scheme", "diffusion", "--procs", "1",
                   "--steps", "2", "--no-cache"])
        assert rc == 0
        assert "diffusion" in capsys.readouterr().out
